// Package minirust implements a small Rust-like language with single
// ownership: lexer, parser, type checker, borrow/move checker, and a
// concrete interpreter.
//
// The paper's §4 analyses (static information-flow control) operate on
// Rust source; Go cannot host them directly, so this package provides the
// analyzed language. It is expressive enough to state the paper's §4
// listing — the Buffer struct, its append method, labeled lets, and the
// two exploits — essentially verbatim:
//
//	struct Buffer { data: Vec<i64> }
//	impl Buffer {
//	    fn new() -> Buffer { return Buffer { data: vec![] }; }
//	    fn append(self: &mut Buffer, v: Vec<i64>) { ... }
//	}
//	fn main() {
//	    let mut buf = Buffer::new();
//	    #[label(public)] let nonsec = vec![1,2,3];
//	    #[label(secret)] let sec = vec![4,5,6];
//	    buf.append(nonsec);
//	    buf.append(sec);
//	    println(buf.data);   // rejected by IFC: leaks secret data
//	    println(nonsec);     // rejected by the borrow checker: moved
//	}
//
// The borrow/move checker plays the role of rustc's ownership checks; the
// abstract interpreter in internal/ifc and the driver in internal/verifier
// play the role of the paper's SMACK-based toolchain.
package minirust

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT
	STRING

	// Keywords.
	KwStruct
	KwImpl
	KwFn
	KwLet
	KwMut
	KwIf
	KwElse
	KwWhile
	KwReturn
	KwTrue
	KwFalse
	KwLabels
	KwVec

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semi
	Colon
	ColonColon
	Arrow
	Dot
	Amp
	AmpAmp
	Pipe2
	Hash
	Assign
	Eq
	Ne
	Lt
	Gt
	Le
	Ge
	Plus
	Minus
	Star
	Slash
	Percent
	Bang
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INT: "integer", STRING: "string",
	KwStruct: "struct", KwImpl: "impl", KwFn: "fn", KwLet: "let",
	KwMut: "mut", KwIf: "if", KwElse: "else", KwWhile: "while",
	KwReturn: "return", KwTrue: "true", KwFalse: "false", KwLabels: "labels",
	KwVec: "vec", LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Comma: ",", Semi: ";", Colon: ":",
	ColonColon: "::", Arrow: "->", Dot: ".", Amp: "&", AmpAmp: "&&",
	Pipe2: "||", Hash: "#", Assign: "=", Eq: "==", Ne: "!=", Lt: "<",
	Gt: ">", Le: "<=", Ge: ">=", Plus: "+", Minus: "-", Star: "*",
	Slash: "/", Percent: "%", Bang: "!",
}

// String names the kind for diagnostics.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"struct": KwStruct, "impl": KwImpl, "fn": KwFn, "let": KwLet,
	"mut": KwMut, "if": KwIf, "else": KwElse, "while": KwWhile,
	"return": KwReturn, "true": KwTrue, "false": KwFalse,
	"labels": KwLabels, "vec": KwVec,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String formats the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string // identifier name, integer literal, or string contents
	Pos  Pos
}

// String formats the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	case STRING:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return t.Kind.String()
	}
}
