package minirust

import (
	"errors"
	"strings"
	"testing"
)

func TestParsePaperProgram(t *testing.T) {
	prog, err := Parse(PaperBufferProgram(true, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.LabelOrder) != 2 || prog.LabelOrder[0] != "public" || prog.LabelOrder[1] != "secret" {
		t.Fatalf("LabelOrder = %v", prog.LabelOrder)
	}
	if _, ok := prog.Structs["Buffer"]; !ok {
		t.Fatal("Buffer struct missing")
	}
	if _, ok := prog.Funcs["Buffer::new"]; !ok {
		t.Fatal("Buffer::new missing")
	}
	app, ok := prog.Funcs["Buffer::append"]
	if !ok {
		t.Fatal("Buffer::append missing")
	}
	if app.IsAssoc {
		t.Fatal("append should not be associated")
	}
	if len(app.Params) != 2 || app.Params[0].Name != "self" {
		t.Fatalf("append params = %+v", app.Params)
	}
	if !app.Params[0].Type.Equal(RefTo(Type{Name: "Buffer"}, true)) {
		t.Fatalf("self type = %s", app.Params[0].Type)
	}
	newFn := prog.Funcs["Buffer::new"]
	if !newFn.IsAssoc || !newFn.Ret.Equal(Type{Name: "Buffer"}) {
		t.Fatalf("new = %+v", newFn)
	}
	main := prog.Funcs["main"]
	// main has: let, let(label), let(label), 2 exprs, 2 printlns = 7 stmts
	if len(main.Body) != 7 {
		t.Fatalf("main has %d stmts", len(main.Body))
	}
	// Label annotations landed on the right lets.
	let1 := main.Body[1].(*LetStmt)
	let2 := main.Body[2].(*LetStmt)
	if let1.Label != "public" || let1.Name != "nonsec" {
		t.Fatalf("let1 = %+v", let1)
	}
	if let2.Label != "secret" || let2.Name != "sec" {
		t.Fatalf("let2 = %+v", let2)
	}
}

func TestParseTypes(t *testing.T) {
	prog, err := Parse(`
fn f(a: i64, b: Vec<Vec<bool>>, c: &str, d: &mut Vec<i64>) -> i64 { return a; }
fn main() { }
`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Funcs["f"]
	if !f.Params[1].Type.Equal(VecOf(VecOf(TypeBool))) {
		t.Fatalf("b type = %s", f.Params[1].Type)
	}
	if !f.Params[2].Type.Equal(RefTo(TypeStr, false)) {
		t.Fatalf("c type = %s", f.Params[2].Type)
	}
	if !f.Params[3].Type.Equal(RefTo(VecOf(TypeI64), true)) {
		t.Fatalf("d type = %s", f.Params[3].Type)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse(`fn main() { let x = 1 + 2 * 3 < 10 && true || false; }`)
	if err != nil {
		t.Fatal(err)
	}
	let := prog.Funcs["main"].Body[0].(*LetStmt)
	// Top must be ||.
	or, ok := let.Init.(*BinaryExpr)
	if !ok || or.Op != Pipe2 {
		t.Fatalf("top = %#v", let.Init)
	}
	and, ok := or.L.(*BinaryExpr)
	if !ok || and.Op != AmpAmp {
		t.Fatalf("second = %#v", or.L)
	}
	cmp, ok := and.L.(*BinaryExpr)
	if !ok || cmp.Op != Lt {
		t.Fatalf("third = %#v", and.L)
	}
	add, ok := cmp.L.(*BinaryExpr)
	if !ok || add.Op != Plus {
		t.Fatalf("fourth = %#v", cmp.L)
	}
	mul, ok := add.R.(*BinaryExpr)
	if !ok || mul.Op != Star {
		t.Fatalf("mul = %#v", add.R)
	}
}

func TestParseStructLitVsBlockAmbiguity(t *testing.T) {
	// `if x { }` must not parse x { } as a struct literal.
	prog, err := Parse(`
struct S { a: i64 }
fn main() {
    let x = true;
    if x { let y = 1; }
    while x { let z = 2; }
    let s = S { a: (1) };
}
`)
	if err != nil {
		t.Fatal(err)
	}
	ifStmt := prog.Funcs["main"].Body[1].(*IfStmt)
	if _, ok := ifStmt.Cond.(*VarRef); !ok {
		t.Fatalf("if cond = %#v", ifStmt.Cond)
	}
	let := prog.Funcs["main"].Body[3].(*LetStmt)
	if _, ok := let.Init.(*StructLit); !ok {
		t.Fatalf("struct literal = %#v", let.Init)
	}
}

func TestParseMethodChainsAndFields(t *testing.T) {
	prog, err := Parse(`fn main() { let a = x.f.g; y.m(1).h(); }`)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Funcs["main"].Body
	fa := body[0].(*LetStmt).Init.(*FieldAccess)
	if fa.Field != "g" {
		t.Fatalf("outer field = %s", fa.Field)
	}
	inner := fa.X.(*FieldAccess)
	if inner.Field != "f" {
		t.Fatalf("inner field = %s", inner.Field)
	}
	mc := body[1].(*ExprStmt).X.(*MethodCall)
	if mc.Method != "h" {
		t.Fatalf("outer method = %s", mc.Method)
	}
	if mc.Recv.(*MethodCall).Method != "m" {
		t.Fatal("inner method")
	}
}

func TestParseAssignmentTargets(t *testing.T) {
	prog, err := Parse(`fn main() { x = 1; x.f = 2; x.f.g = 3; }`)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Funcs["main"].Body
	a0 := body[0].(*AssignStmt)
	if a0.Target.String() != "x" {
		t.Fatalf("target = %s", a0.Target)
	}
	a2 := body[2].(*AssignStmt)
	if a2.Target.String() != "x.f.g" {
		t.Fatalf("target = %s", a2.Target)
	}
}

func TestParseInvalidAssignTarget(t *testing.T) {
	_, err := Parse(`fn main() { f() = 1; }`)
	if err == nil || !strings.Contains(err.Error(), "invalid assignment target") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseBorrowForms(t *testing.T) {
	prog, err := Parse(`fn main() { f(&x, &mut y, &z.w); }`)
	if err != nil {
		t.Fatal(err)
	}
	call := prog.Funcs["main"].Body[0].(*ExprStmt).X.(*CallExpr)
	b0 := call.Args[0].(*BorrowExpr)
	b1 := call.Args[1].(*BorrowExpr)
	b2 := call.Args[2].(*BorrowExpr)
	if b0.Mut || !b1.Mut || b2.Mut {
		t.Fatal("borrow mutability wrong")
	}
	if _, ok := b2.X.(*FieldAccess); !ok {
		t.Fatal("borrow of field")
	}
}

func TestParseBorrowOfLiteralRejected(t *testing.T) {
	_, err := Parse(`fn main() { f(&1); }`)
	if err == nil {
		t.Fatal("borrow of literal accepted")
	}
}

func TestParseElseIfChain(t *testing.T) {
	prog, err := Parse(`fn main() { if a { } else if b { } else { let x = 1; } }`)
	if err != nil {
		t.Fatal(err)
	}
	top := prog.Funcs["main"].Body[0].(*IfStmt)
	elif := top.Else[0].(*IfStmt)
	if elif.Else == nil {
		t.Fatal("final else missing")
	}
}

func TestParseVecMacro(t *testing.T) {
	prog, err := Parse(`fn main() { let v = vec![1, 2+3]; let e = vec![]; }`)
	if err != nil {
		t.Fatal(err)
	}
	v := prog.Funcs["main"].Body[0].(*LetStmt).Init.(*VecLit)
	if len(v.Elems) != 2 {
		t.Fatalf("elems = %d", len(v.Elems))
	}
	e := prog.Funcs["main"].Body[1].(*LetStmt).Init.(*VecLit)
	if len(e.Elems) != 0 {
		t.Fatal("empty vec not empty")
	}
}

func TestParseErrorsProduced(t *testing.T) {
	cases := []string{
		`fn main( { }`,                                // bad params
		`struct S { a: i64`,                           // unterminated struct
		`fn main() { let = 1; }`,                      // missing name
		`fn main() { #[unknown(x)] let a = 1; }`,      // unknown annotation
		`fn main() { #[label(x)] f(); }`,              // label on non-let
		`impl Missing { }`,                            // impl for unknown struct
		`struct S { a: i64, a: bool }`,                // duplicate field
		`struct S {} struct S {}`,                     // duplicate struct
		`fn f() {} fn f() {}`,                         // duplicate fn
		`labels a < ; fn main() {}`,                   // bad labels decl
		`fn main() { let x = S { a: 1, a: 2 }; }`,     // dup literal field
		`fn main() { let x = 99999999999999999999; }`, // int overflow
		`blah`, // junk top level
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestParseErrorType(t *testing.T) {
	_, err := Parse(`fn`)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T", err)
	}
	if pe.Pos.Line != 1 {
		t.Fatalf("pos = %v", pe.Pos)
	}
}

func TestParseReceiverForms(t *testing.T) {
	prog, err := Parse(`
struct S { a: i64 }
impl S {
    fn by_ref(&self) { }
    fn by_mut(&mut self) { }
    fn by_val(self) { }
    fn assoc(x: i64) { }
}
fn main() { }
`)
	if err != nil {
		t.Fatal(err)
	}
	if typ := prog.Funcs["S::by_ref"].Params[0].Type; !typ.Equal(RefTo(Type{Name: "S"}, false)) {
		t.Fatalf("by_ref self = %s", typ)
	}
	if typ := prog.Funcs["S::by_mut"].Params[0].Type; !typ.Equal(RefTo(Type{Name: "S"}, true)) {
		t.Fatalf("by_mut self = %s", typ)
	}
	if typ := prog.Funcs["S::by_val"].Params[0].Type; !typ.Equal(Type{Name: "S"}) {
		t.Fatalf("by_val self = %s", typ)
	}
	if !prog.Funcs["S::assoc"].IsAssoc {
		t.Fatal("assoc not associated")
	}
}

func TestParseUnitReturnType(t *testing.T) {
	prog, err := Parse(`fn f() -> () { } fn main() { }`)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Funcs["f"].Ret.IsUnit() {
		t.Fatal("unit return")
	}
}

func TestTypeStringRendering(t *testing.T) {
	cases := map[string]Type{
		"i64":           TypeI64,
		"Vec<i64>":      VecOf(TypeI64),
		"&Vec<bool>":    RefTo(VecOf(TypeBool), false),
		"&mut Buffer":   RefTo(Type{Name: "Buffer"}, true),
		"Vec<Vec<str>>": VecOf(VecOf(TypeStr)),
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}
