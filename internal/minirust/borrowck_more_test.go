package minirust

import "testing"

// Additional borrow-checker coverage for the method-call and
// non-place-receiver paths.

func TestMethodOnCallResultReceiver(t *testing.T) {
	// The receiver is a call result (not a place): the borrow checker
	// must analyze it by value without crashing or false-positives.
	if err := borrowCheckSrc(t, `
struct S { v: Vec<i64> }
impl S {
    fn new() -> S { return S { v: vec![] }; }
    fn len(&self) -> i64 { return vec_len(&self.v); }
}
fn main() {
    let n = S::new().len();
    println(n);
}
`); err != nil {
		t.Fatal(err)
	}
}

func TestConsumingMethodOnCallResult(t *testing.T) {
	if err := borrowCheckSrc(t, `
struct S { v: Vec<i64> }
impl S {
    fn new() -> S { return S { v: vec![] }; }
    fn consume(self) -> i64 { return 1; }
}
fn main() {
    let x = S::new().consume();
    println(x);
}
`); err != nil {
		t.Fatal(err)
	}
}

func TestMethodArgMovesWhileReceiverBorrowed(t *testing.T) {
	// Receiver borrowed, argument moved: legal (distinct variables)…
	if err := borrowCheckSrc(t, `
struct S { v: Vec<i64> }
impl S {
    fn put(&mut self, x: Vec<i64>) { self.v = x; }
}
fn main() {
    let mut s = S { v: vec![] };
    let data = vec![1];
    s.put(data);
}
`); err != nil {
		t.Fatal(err)
	}
	// …but moving the receiver's own root as an argument conflicts with
	// the receiver borrow in the same statement.
	expectBorrowError(t, `
struct S { v: Vec<i64> }
impl S {
    fn put(&mut self, x: S) { }
}
fn main() {
    let mut s = S { v: vec![] };
    s.put(s);
}
`, "also borrowed in this statement")
}

func TestNestedMethodCallsBorrowTwice(t *testing.T) {
	// s is borrowed for both the outer and inner call within one
	// statement: shared borrows coexist.
	if err := borrowCheckSrc(t, `
struct S { v: Vec<i64> }
impl S {
    fn len(&self) -> i64 { return vec_len(&self.v); }
}
fn add(a: i64, b: i64) -> i64 { return a + b; }
fn main() {
    let s = S { v: vec![1] };
    let n = add(s.len(), s.len());
    println(n);
}
`); err != nil {
		t.Fatal(err)
	}
}

func TestMoveIntoVecThenIndexViaBorrow(t *testing.T) {
	if err := borrowCheckSrc(t, `
fn main() {
    let inner = vec![1, 2];
    let mut outer: Vec<Vec<i64>> = vec![];
    vec_push(&mut outer, inner);
    let n = vec_len(&outer);
    println(n);
}
`); err != nil {
		t.Fatal(err)
	}
	// inner was moved into the vector.
	expectBorrowError(t, `
fn main() {
    let inner = vec![1, 2];
    let mut outer: Vec<Vec<i64>> = vec![];
    vec_push(&mut outer, inner);
    println(inner);
}
`, "use of moved value inner")
}

func TestUnaryAndBinaryOperandsAreUses(t *testing.T) {
	expectBorrowError(t, `
fn take(v: Vec<i64>) -> i64 { return 0; }
fn main() {
    let v = vec![1];
    let x = take(v) + take(v);
}
`, "use of moved value v")
}

func TestReturnInsideBranchesJoins(t *testing.T) {
	// A move before return in one branch doesn't poison the other path.
	if err := borrowCheckSrc(t, `
fn take(v: Vec<i64>) -> i64 { return 0; }
fn f(c: bool) -> i64 {
    let v = vec![1];
    if c {
        return take(v);
    }
    return take(v);
}
fn main() { println(f(true)); }
`); err != nil {
		t.Fatal(err)
	}
}
