package minirust

// mustCheck parses and type-checks a program for tests.
func mustCheck(src string) (*Checked, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Check(prog)
}
