package minirust

import (
	"fmt"
	"io"
	"strings"
)

// RuntimeError is an execution failure (assertion violation, arithmetic
// fault, step-budget exhaustion). In the SFI experiments such failures are
// the panics that fault a protection domain.
type RuntimeError struct {
	Pos Pos
	Msg string
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("%s: runtime error: %s", e.Pos, e.Msg) }

// LeakError is raised by the dynamic IFC monitor when data flows to a
// channel above its bound. The static analysis in internal/ifc exists to
// prove this can never fire; tests use the monitor as the ground-truth
// oracle for that claim.
type LeakError struct {
	Pos   Pos
	Label string // label of the data (joined with the pc)
	Bound string // channel bound that was exceeded
}

func (e *LeakError) Error() string {
	return fmt.Sprintf("%s: information leak: %s data sent to %s-bounded channel", e.Pos, e.Label, e.Bound)
}

// Monitor supplies lattice operations for dynamic label tracking. All
// three funcs must be set. A nil *Monitor disables label tracking.
type Monitor struct {
	Bottom string
	Join   func(a, b string) string
	Le     func(a, b string) bool
	// PrintlnBound is the channel bound of the println sink (defaults to
	// Bottom — an untrusted public terminal, as in the paper).
	PrintlnBound string
}

func (m *Monitor) printlnBound() string {
	if m.PrintlnBound != "" {
		return m.PrintlnBound
	}
	return m.Bottom
}

// Value is a runtime value. Label carries the dynamic security label when
// a Monitor is installed.
type Value struct {
	Kind  ValueKind
	I     int64
	B     bool
	S     string
	Vec   *VecVal
	St    *StructVal
	Ref   *Value // borrow: pointer to the borrowed cell
	Label string
}

// ValueKind discriminates Value.
type ValueKind int

// Value kinds.
const (
	VUnit ValueKind = iota
	VInt
	VBool
	VStr
	VVec
	VStruct
	VRef
	VMoved // poisoned cell: the value was moved away (defense in depth)
)

// VecVal is a mutable vector; aliasing through borrows shares it.
type VecVal struct {
	Elems []Value
}

// StructVal is a mutable struct instance; field cells are addressable so
// borrows of fields alias storage.
type StructVal struct {
	Name   string
	Fields map[string]*Value
}

// Format renders a value like Rust's {:?}.
func (v Value) Format() string {
	switch v.Kind {
	case VUnit:
		return "()"
	case VInt:
		return fmt.Sprintf("%d", v.I)
	case VBool:
		return fmt.Sprintf("%t", v.B)
	case VStr:
		return fmt.Sprintf("%q", v.S)
	case VVec:
		parts := make([]string, len(v.Vec.Elems))
		for i, e := range v.Vec.Elems {
			parts[i] = e.Format()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case VStruct:
		parts := make([]string, 0, len(v.St.Fields))
		for name, f := range v.St.Fields {
			parts = append(parts, fmt.Sprintf("%s: %s", name, f.Format()))
		}
		return v.St.Name + " { " + strings.Join(parts, ", ") + " }"
	case VRef:
		return "&" + v.Ref.Format()
	case VMoved:
		return "<moved>"
	}
	return "<?>"
}

// Interp executes a checked program.
type Interp struct {
	checked  *Checked
	out      io.Writer
	monitor  *Monitor
	maxSteps int
	steps    int
	pc       []string // dynamic pc-label stack (monitor mode)
}

// InterpOption configures an interpreter.
type InterpOption func(*Interp)

// WithOutput directs println output.
func WithOutput(w io.Writer) InterpOption { return func(i *Interp) { i.out = w } }

// WithMonitor installs the dynamic IFC monitor.
func WithMonitor(m *Monitor) InterpOption { return func(i *Interp) { i.monitor = m } }

// WithMaxSteps bounds execution (default 1e6 statements/expressions).
func WithMaxSteps(n int) InterpOption { return func(i *Interp) { i.maxSteps = n } }

// NewInterp creates an interpreter for a checked program.
func NewInterp(c *Checked, opts ...InterpOption) *Interp {
	in := &Interp{checked: c, out: io.Discard, maxSteps: 1_000_000}
	for _, o := range opts {
		o(in)
	}
	return in
}

// Run executes main.
func (in *Interp) Run() error {
	main := in.checked.Prog.Funcs["main"]
	_, err := in.callFunc(main, nil, main.Pos)
	return err
}

// NewInt builds an i64 runtime value with the given label ("" = untracked).
func NewInt(v int64, label string) Value { return Value{Kind: VInt, I: v, Label: label} }

// NewBool builds a bool runtime value.
func NewBool(v bool, label string) Value { return Value{Kind: VBool, B: v, Label: label} }

// NewStr builds a str runtime value.
func NewStr(v string, label string) Value { return Value{Kind: VStr, S: v, Label: label} }

// CallFunction invokes a named function with the given argument values —
// the embedding hook for hosts (e.g. verified kernel extensions) that
// drive entry points other than main. The step budget is shared across
// calls; Reset it with ResetSteps for long-lived hosts.
func (in *Interp) CallFunction(name string, args []Value) (Value, error) {
	f, ok := in.checked.Prog.Funcs[name]
	if !ok {
		return Value{}, &RuntimeError{Msg: fmt.Sprintf("unknown function %s", name)}
	}
	return in.callFunc(f, args, f.Pos)
}

// ResetSteps resets the interpreter's step budget, for hosts making many
// independent CallFunction invocations.
func (in *Interp) ResetSteps() { in.steps = 0 }

// returnSignal unwinds to the function call boundary.
type returnSignal struct {
	val Value
}

func (returnSignal) Error() string { return "return" }

func (in *Interp) step(pos Pos) error {
	in.steps++
	if in.steps > in.maxSteps {
		return &RuntimeError{Pos: pos, Msg: "step budget exhausted (infinite loop?)"}
	}
	return nil
}

func (in *Interp) bottom() string {
	if in.monitor != nil {
		return in.monitor.Bottom
	}
	return ""
}

func (in *Interp) join(a, b string) string {
	if in.monitor == nil {
		return ""
	}
	if a == "" {
		a = in.monitor.Bottom
	}
	if b == "" {
		b = in.monitor.Bottom
	}
	return in.monitor.Join(a, b)
}

func (in *Interp) pcLabel() string {
	if in.monitor == nil {
		return ""
	}
	l := in.monitor.Bottom
	for _, p := range in.pc {
		l = in.monitor.Join(l, p)
	}
	return l
}

// env is the runtime scope chain.
type rtEnv struct {
	vars   map[string]*Value
	parent *rtEnv
}

func newRtEnv(parent *rtEnv) *rtEnv {
	return &rtEnv{vars: make(map[string]*Value), parent: parent}
}

func (e *rtEnv) lookup(name string) (*Value, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (in *Interp) callFunc(f *FuncDef, args []Value, pos Pos) (Value, error) {
	if len(args) != len(f.Params) {
		return Value{}, &RuntimeError{Pos: pos, Msg: fmt.Sprintf("%s: arity mismatch", f.Name)}
	}
	env := newRtEnv(nil)
	for i, p := range f.Params {
		v := args[i]
		env.vars[p.Name] = &v
	}
	err := in.execBlock(f.Body, env)
	if err != nil {
		if rs, ok := err.(returnSignal); ok {
			return rs.val, nil
		}
		return Value{}, err
	}
	return Value{Kind: VUnit, Label: in.bottom()}, nil
}

func (in *Interp) execBlock(stmts []Stmt, env *rtEnv) error {
	for _, s := range stmts {
		if err := in.execStmt(s, env); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) execStmt(s Stmt, env *rtEnv) error {
	if err := in.step(s.Position()); err != nil {
		return err
	}
	switch v := s.(type) {
	case *LetStmt:
		val, err := in.evalMove(v.Init, env)
		if err != nil {
			return err
		}
		if in.monitor != nil {
			if v.Label != "" {
				val.Label = v.Label // user-provided source label
			}
			val.Label = in.join(val.Label, in.pcLabel())
		}
		cell := val
		env.vars[v.Name] = &cell
		return nil

	case *AssignStmt:
		val, err := in.evalMove(v.Value, env)
		if err != nil {
			return err
		}
		if in.monitor != nil {
			val.Label = in.join(val.Label, in.pcLabel())
		}
		cell, err := in.resolveLValue(v.Target, env)
		if err != nil {
			return err
		}
		*cell = val
		return nil

	case *ExprStmt:
		_, err := in.eval(v.X, env)
		return err

	case *IfStmt:
		cond, err := in.eval(v.Cond, env)
		if err != nil {
			return err
		}
		if cond.Kind != VBool {
			return &RuntimeError{Pos: v.Pos, Msg: "condition is not bool"}
		}
		if in.monitor != nil {
			in.pc = append(in.pc, cond.Label)
			defer func() { in.pc = in.pc[:len(in.pc)-1] }()
		}
		if cond.B {
			return in.execBlock(v.Then, newRtEnv(env))
		}
		if v.Else != nil {
			return in.execBlock(v.Else, newRtEnv(env))
		}
		return nil

	case *WhileStmt:
		for {
			if err := in.step(v.Pos); err != nil {
				return err
			}
			cond, err := in.eval(v.Cond, env)
			if err != nil {
				return err
			}
			if cond.Kind != VBool {
				return &RuntimeError{Pos: v.Pos, Msg: "condition is not bool"}
			}
			if !cond.B {
				return nil
			}
			err = func() error {
				if in.monitor != nil {
					in.pc = append(in.pc, cond.Label)
					defer func() { in.pc = in.pc[:len(in.pc)-1] }()
				}
				return in.execBlock(v.Body, newRtEnv(env))
			}()
			if err != nil {
				return err
			}
		}

	case *ReturnStmt:
		if v.Value == nil {
			return returnSignal{val: Value{Kind: VUnit, Label: in.bottom()}}
		}
		val, err := in.evalMove(v.Value, env)
		if err != nil {
			return err
		}
		return returnSignal{val: val}
	}
	return &RuntimeError{Pos: s.Position(), Msg: "unhandled statement"}
}

// resolveLValue returns the storage cell for an assignment target.
func (in *Interp) resolveLValue(lv LValue, env *rtEnv) (*Value, error) {
	cell, ok := env.lookup(lv.Root)
	if !ok {
		return nil, &RuntimeError{Pos: lv.Pos, Msg: fmt.Sprintf("unknown variable %s", lv.Root)}
	}
	for _, field := range lv.Path {
		for cell.Kind == VRef {
			cell = cell.Ref
		}
		if cell.Kind != VStruct {
			return nil, &RuntimeError{Pos: lv.Pos, Msg: fmt.Sprintf("%s is not a struct", lv.Root)}
		}
		f, ok := cell.St.Fields[field]
		if !ok {
			return nil, &RuntimeError{Pos: lv.Pos, Msg: fmt.Sprintf("no field %s", field)}
		}
		cell = f
	}
	return cell, nil
}

// evalMove evaluates an expression whose result is consumed by value; if
// the source is a place holding a move-type value, the place is poisoned
// (runtime defense in depth behind the static borrow checker).
func (in *Interp) evalMove(e Expr, env *rtEnv) (Value, error) {
	v, err := in.eval(e, env)
	if err != nil {
		return Value{}, err
	}
	if !in.checked.TypeOf(e).IsCopy() {
		if cell := in.placeCell(e, env); cell != nil {
			*cell = Value{Kind: VMoved}
		}
	}
	return v, nil
}

// placeCell returns the storage cell of a place expression, or nil.
func (in *Interp) placeCell(e Expr, env *rtEnv) *Value {
	switch v := e.(type) {
	case *VarRef:
		if cell, ok := env.lookup(v.Name); ok {
			return cell
		}
	case *FieldAccess:
		base := in.placeCell(v.X, env)
		if base == nil {
			return nil
		}
		for base.Kind == VRef {
			base = base.Ref
		}
		if base.Kind != VStruct {
			return nil
		}
		return base.St.Fields[v.Field]
	}
	return nil
}

func (in *Interp) eval(e Expr, env *rtEnv) (Value, error) {
	if err := in.step(e.Position()); err != nil {
		return Value{}, err
	}
	switch v := e.(type) {
	case *IntLit:
		return Value{Kind: VInt, I: v.Value, Label: in.bottom()}, nil
	case *BoolLit:
		return Value{Kind: VBool, B: v.Value, Label: in.bottom()}, nil
	case *StrLit:
		return Value{Kind: VStr, S: v.Value, Label: in.bottom()}, nil

	case *VecLit:
		vec := &VecVal{}
		label := in.bottom()
		for _, el := range v.Elems {
			ev, err := in.evalMove(el, env)
			if err != nil {
				return Value{}, err
			}
			label = in.join(label, ev.Label)
			vec.Elems = append(vec.Elems, ev)
		}
		return Value{Kind: VVec, Vec: vec, Label: label}, nil

	case *VarRef:
		cell, ok := env.lookup(v.Name)
		if !ok {
			return Value{}, &RuntimeError{Pos: v.Pos, Msg: fmt.Sprintf("unknown variable %s", v.Name)}
		}
		if cell.Kind == VMoved {
			return Value{}, &RuntimeError{Pos: v.Pos, Msg: fmt.Sprintf("use of moved value %s", v.Name)}
		}
		return *cell, nil

	case *FieldAccess:
		base, err := in.eval(v.X, env)
		if err != nil {
			return Value{}, err
		}
		for base.Kind == VRef {
			base = *base.Ref
		}
		if base.Kind != VStruct {
			return Value{}, &RuntimeError{Pos: v.Pos, Msg: "field access on non-struct"}
		}
		f, ok := base.St.Fields[v.Field]
		if !ok {
			return Value{}, &RuntimeError{Pos: v.Pos, Msg: fmt.Sprintf("no field %s", v.Field)}
		}
		if f.Kind == VMoved {
			return Value{}, &RuntimeError{Pos: v.Pos, Msg: fmt.Sprintf("use of moved field %s", v.Field)}
		}
		out := *f
		out.Label = in.join(out.Label, base.Label)
		return out, nil

	case *BorrowExpr:
		cell := in.placeCell(v.X, env)
		if cell == nil {
			return Value{}, &RuntimeError{Pos: v.Pos, Msg: "cannot borrow this expression"}
		}
		for cell.Kind == VRef {
			cell = cell.Ref
		}
		if cell.Kind == VMoved {
			return Value{}, &RuntimeError{Pos: v.Pos, Msg: "borrow of moved value"}
		}
		return Value{Kind: VRef, Ref: cell, Label: cell.Label}, nil

	case *UnaryExpr:
		x, err := in.eval(v.X, env)
		if err != nil {
			return Value{}, err
		}
		switch v.Op {
		case Bang:
			return Value{Kind: VBool, B: !x.B, Label: x.Label}, nil
		case Minus:
			return Value{Kind: VInt, I: -x.I, Label: x.Label}, nil
		}
		return Value{}, &RuntimeError{Pos: v.Pos, Msg: "unknown unary op"}

	case *BinaryExpr:
		l, err := in.eval(v.L, env)
		if err != nil {
			return Value{}, err
		}
		// Short-circuit logicals.
		if v.Op == AmpAmp && !l.B {
			return Value{Kind: VBool, B: false, Label: l.Label}, nil
		}
		if v.Op == Pipe2 && l.B {
			return Value{Kind: VBool, B: true, Label: l.Label}, nil
		}
		r, err := in.eval(v.R, env)
		if err != nil {
			return Value{}, err
		}
		label := in.join(l.Label, r.Label)
		switch v.Op {
		case Plus:
			return Value{Kind: VInt, I: l.I + r.I, Label: label}, nil
		case Minus:
			return Value{Kind: VInt, I: l.I - r.I, Label: label}, nil
		case Star:
			return Value{Kind: VInt, I: l.I * r.I, Label: label}, nil
		case Slash:
			if r.I == 0 {
				return Value{}, &RuntimeError{Pos: v.Pos, Msg: "division by zero"}
			}
			return Value{Kind: VInt, I: l.I / r.I, Label: label}, nil
		case Percent:
			if r.I == 0 {
				return Value{}, &RuntimeError{Pos: v.Pos, Msg: "remainder by zero"}
			}
			return Value{Kind: VInt, I: l.I % r.I, Label: label}, nil
		case Lt:
			return Value{Kind: VBool, B: l.I < r.I, Label: label}, nil
		case Gt:
			return Value{Kind: VBool, B: l.I > r.I, Label: label}, nil
		case Le:
			return Value{Kind: VBool, B: l.I <= r.I, Label: label}, nil
		case Ge:
			return Value{Kind: VBool, B: l.I >= r.I, Label: label}, nil
		case Eq, Ne:
			eq, err := valueEq(l, r)
			if err != nil {
				return Value{}, &RuntimeError{Pos: v.Pos, Msg: err.Error()}
			}
			if v.Op == Ne {
				eq = !eq
			}
			return Value{Kind: VBool, B: eq, Label: label}, nil
		case AmpAmp, Pipe2:
			return Value{Kind: VBool, B: r.B, Label: label}, nil
		}
		return Value{}, &RuntimeError{Pos: v.Pos, Msg: "unknown binary op"}

	case *StructLit:
		sv := &StructVal{Name: v.Name, Fields: make(map[string]*Value)}
		for name, fe := range v.Fields {
			fv, err := in.evalMove(fe, env)
			if err != nil {
				return Value{}, err
			}
			cell := fv
			sv.Fields[name] = &cell
		}
		return Value{Kind: VStruct, St: sv, Label: in.bottom()}, nil

	case *CallExpr:
		return in.evalCall(v, env)

	case *MethodCall:
		return in.evalMethodCall(v, env)
	}
	return Value{}, &RuntimeError{Pos: e.Position(), Msg: "unhandled expression"}
}

func valueEq(a, b Value) (bool, error) {
	if a.Kind != b.Kind {
		return false, fmt.Errorf("comparing different kinds")
	}
	switch a.Kind {
	case VInt:
		return a.I == b.I, nil
	case VBool:
		return a.B == b.B, nil
	case VStr:
		return a.S == b.S, nil
	case VUnit:
		return true, nil
	}
	return false, fmt.Errorf("equality unsupported for this kind")
}

func (in *Interp) evalCall(v *CallExpr, env *rtEnv) (Value, error) {
	if Builtins[v.Name] {
		return in.evalBuiltin(v, env)
	}
	f, ok := in.checked.Prog.Funcs[v.Name]
	if !ok {
		return Value{}, &RuntimeError{Pos: v.Pos, Msg: fmt.Sprintf("unknown function %s", v.Name)}
	}
	args := make([]Value, len(v.Args))
	for i, a := range v.Args {
		av, err := in.evalArg(a, f.Params[i].Type, env)
		if err != nil {
			return Value{}, err
		}
		args[i] = av
	}
	return in.callFunc(f, args, v.Pos)
}

// evalArg evaluates a call argument: by-reference params receive the
// borrow value; by-value params consume (move) the argument.
func (in *Interp) evalArg(a Expr, want Type, env *rtEnv) (Value, error) {
	if want.IsRef() {
		return in.eval(a, env)
	}
	return in.evalMove(a, env)
}

func (in *Interp) evalMethodCall(v *MethodCall, env *rtEnv) (Value, error) {
	base := in.checked.TypeOf(v.Recv)
	for base.IsRef() {
		base = *base.Ref
	}
	f, ok := in.checked.Prog.Funcs[QualifiedName(base.Name, v.Method)]
	if !ok {
		return Value{}, &RuntimeError{Pos: v.Pos, Msg: fmt.Sprintf("unknown method %s", v.Method)}
	}
	selfT := f.Params[0].Type
	var recv Value
	var err error
	recvT := in.checked.TypeOf(v.Recv)
	switch {
	case selfT.IsRef() && !recvT.IsRef():
		// Auto-borrow the receiver place.
		cell := in.placeCell(v.Recv, env)
		if cell == nil {
			return Value{}, &RuntimeError{Pos: v.Pos, Msg: "cannot borrow receiver"}
		}
		for cell.Kind == VRef {
			cell = cell.Ref
		}
		recv = Value{Kind: VRef, Ref: cell, Label: cell.Label}
	case selfT.IsRef() && recvT.IsRef():
		recv, err = in.eval(v.Recv, env)
	default:
		recv, err = in.evalMove(v.Recv, env)
	}
	if err != nil {
		return Value{}, err
	}
	args := make([]Value, 0, len(v.Args)+1)
	args = append(args, recv)
	for i, a := range v.Args {
		av, err := in.evalArg(a, f.Params[i+1].Type, env)
		if err != nil {
			return Value{}, err
		}
		args = append(args, av)
	}
	return in.callFunc(f, args, v.Pos)
}

func (in *Interp) evalBuiltin(v *CallExpr, env *rtEnv) (Value, error) {
	switch v.Name {
	case "println":
		parts := make([]string, len(v.Args))
		label := in.bottom()
		for i, a := range v.Args {
			av, err := in.eval(a, env)
			if err != nil {
				return Value{}, err
			}
			parts[i] = av.Format()
			label = in.join(label, av.Label)
		}
		if in.monitor != nil {
			eff := in.join(label, in.pcLabel())
			bound := in.monitor.printlnBound()
			if !in.monitor.Le(eff, bound) {
				return Value{}, &LeakError{Pos: v.Pos, Label: eff, Bound: bound}
			}
		}
		fmt.Fprintln(in.out, strings.Join(parts, " "))
		return Value{Kind: VUnit, Label: in.bottom()}, nil

	case "assert":
		av, err := in.eval(v.Args[0], env)
		if err != nil {
			return Value{}, err
		}
		if !av.B {
			return Value{}, &RuntimeError{Pos: v.Pos, Msg: "assertion failed"}
		}
		return Value{Kind: VUnit, Label: in.bottom()}, nil

	case "vec_len":
		av, err := in.eval(v.Args[0], env)
		if err != nil {
			return Value{}, err
		}
		vec := av
		for vec.Kind == VRef {
			vec = *vec.Ref
		}
		return Value{Kind: VInt, I: int64(len(vec.Vec.Elems)), Label: vec.Label}, nil

	case "vec_get":
		av, err := in.eval(v.Args[0], env)
		if err != nil {
			return Value{}, err
		}
		idx, err := in.eval(v.Args[1], env)
		if err != nil {
			return Value{}, err
		}
		vec := av
		for vec.Kind == VRef {
			vec = *vec.Ref
		}
		if idx.I < 0 || idx.I >= int64(len(vec.Vec.Elems)) {
			return Value{}, &RuntimeError{Pos: v.Pos, Msg: fmt.Sprintf("index %d out of bounds (len %d)", idx.I, len(vec.Vec.Elems))}
		}
		out := vec.Vec.Elems[idx.I]
		out.Label = in.join(in.join(out.Label, vec.Label), idx.Label)
		return out, nil

	case "vec_push":
		av, err := in.eval(v.Args[0], env)
		if err != nil {
			return Value{}, err
		}
		el, err := in.evalMove(v.Args[1], env)
		if err != nil {
			return Value{}, err
		}
		cell := &av
		for cell.Kind == VRef {
			cell = cell.Ref
		}
		if cell.Kind != VVec {
			return Value{}, &RuntimeError{Pos: v.Pos, Msg: "vec_push target is not a vector"}
		}
		cell.Vec.Elems = append(cell.Vec.Elems, el)
		cell.Label = in.join(in.join(cell.Label, el.Label), in.pcLabel())
		return Value{Kind: VUnit, Label: in.bottom()}, nil

	case "declassify":
		av, err := in.evalMove(v.Args[0], env)
		if err != nil {
			return Value{}, err
		}
		target := v.Args[1].(*StrLit).Value
		av.Label = target
		return av, nil

	case "assert_label_max":
		av, err := in.eval(v.Args[0], env)
		if err != nil {
			return Value{}, err
		}
		bound := v.Args[1].(*StrLit).Value
		if in.monitor != nil {
			eff := in.join(av.Label, in.pcLabel())
			if !in.monitor.Le(eff, bound) {
				return Value{}, &LeakError{Pos: v.Pos, Label: eff, Bound: bound}
			}
		}
		return Value{Kind: VUnit, Label: in.bottom()}, nil
	}
	return Value{}, &RuntimeError{Pos: v.Pos, Msg: fmt.Sprintf("unknown builtin %s", v.Name)}
}
