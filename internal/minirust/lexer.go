package minirust

import (
	"fmt"
	"strings"
	"unicode"
)

// LexError is a lexical error with position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: lex error: %s", e.Pos, e.Msg) }

// Lex tokenizes src. Comments run from // to end of line.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == EOF {
			return toks, nil
		}
	}
}

type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) next() (Token, error) {
	l.skipSpaceAndComments()
	start := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: start}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		var sb strings.Builder
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			sb.WriteByte(l.advance())
		}
		word := sb.String()
		if k, ok := keywords[word]; ok {
			return Token{Kind: k, Text: word, Pos: start}, nil
		}
		return Token{Kind: IDENT, Text: word, Pos: start}, nil

	case unicode.IsDigit(rune(c)):
		var sb strings.Builder
		for l.off < len(l.src) && unicode.IsDigit(rune(l.peek())) {
			sb.WriteByte(l.advance())
		}
		if l.off < len(l.src) && isIdentStart(l.peek()) {
			return Token{}, &LexError{Pos: l.pos(), Msg: "identifier cannot start with a digit"}
		}
		return Token{Kind: INT, Text: sb.String(), Pos: start}, nil

	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.off >= len(l.src) {
				return Token{}, &LexError{Pos: start, Msg: "unterminated string"}
			}
			ch := l.advance()
			if ch == '"' {
				return Token{Kind: STRING, Text: sb.String(), Pos: start}, nil
			}
			if ch == '\\' {
				if l.off >= len(l.src) {
					return Token{}, &LexError{Pos: start, Msg: "unterminated escape"}
				}
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"':
					sb.WriteByte('"')
				case '\\':
					sb.WriteByte('\\')
				default:
					return Token{}, &LexError{Pos: start, Msg: fmt.Sprintf("unknown escape \\%c", esc)}
				}
				continue
			}
			sb.WriteByte(ch)
		}
	}

	two := func(k Kind) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: k, Pos: start}, nil
	}
	one := func(k Kind) (Token, error) {
		l.advance()
		return Token{Kind: k, Pos: start}, nil
	}

	switch {
	case c == ':' && l.peek2() == ':':
		return two(ColonColon)
	case c == '-' && l.peek2() == '>':
		return two(Arrow)
	case c == '&' && l.peek2() == '&':
		return two(AmpAmp)
	case c == '|' && l.peek2() == '|':
		return two(Pipe2)
	case c == '=' && l.peek2() == '=':
		return two(Eq)
	case c == '!' && l.peek2() == '=':
		return two(Ne)
	case c == '<' && l.peek2() == '=':
		return two(Le)
	case c == '>' && l.peek2() == '=':
		return two(Ge)
	}

	switch c {
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case '[':
		return one(LBracket)
	case ']':
		return one(RBracket)
	case ',':
		return one(Comma)
	case ';':
		return one(Semi)
	case ':':
		return one(Colon)
	case '.':
		return one(Dot)
	case '&':
		return one(Amp)
	case '#':
		return one(Hash)
	case '=':
		return one(Assign)
	case '<':
		return one(Lt)
	case '>':
		return one(Gt)
	case '+':
		return one(Plus)
	case '-':
		return one(Minus)
	case '*':
		return one(Star)
	case '/':
		return one(Slash)
	case '%':
		return one(Percent)
	case '!':
		return one(Bang)
	}
	return Token{}, &LexError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
}
