package minirust

import (
	"errors"
	"strings"
	"testing"
)

func expectTypeError(t *testing.T, src, want string) {
	t.Helper()
	_, err := mustCheck(src)
	if err == nil {
		t.Fatalf("Check succeeded, want error containing %q", want)
	}
	var te *TypeError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T (%v), want *TypeError", err, err)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("err = %v, want substring %q", err, want)
	}
}

func TestCheckPaperProgram(t *testing.T) {
	c, err := mustCheck(PaperBufferProgram(true, false))
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check inferred types.
	main := c.Prog.Funcs["main"]
	let := main.Body[1].(*LetStmt) // nonsec
	if !let.SetType.Equal(VecOf(TypeI64)) {
		t.Fatalf("nonsec type = %s", let.SetType)
	}
}

func TestCheckRequiresMain(t *testing.T) {
	expectTypeError(t, `fn f() { }`, "no main")
}

func TestCheckUnknownVariable(t *testing.T) {
	expectTypeError(t, `fn main() { let x = y; }`, "unknown variable y")
}

func TestCheckUnknownType(t *testing.T) {
	expectTypeError(t, `fn f(x: Widget) { } fn main() { }`, "unknown type Widget")
}

func TestCheckArithmeticTypes(t *testing.T) {
	expectTypeError(t, `fn main() { let x = 1 + true; }`, "arithmetic requires i64")
	expectTypeError(t, `fn main() { let x = true < false; }`, "comparison requires i64")
	expectTypeError(t, `fn main() { let x = 1 && true; }`, "logical operator requires bool")
	expectTypeError(t, `fn main() { let x = !1; }`, "! requires bool")
	expectTypeError(t, `fn main() { let x = -true; }`, "- requires i64")
	expectTypeError(t, `fn main() { let x = 1 == true; }`, "cannot compare")
	expectTypeError(t, `fn main() { let x = vec![1] == vec![1]; }`, "equality on Vec<i64> is not supported")
}

func TestCheckConditionMustBeBool(t *testing.T) {
	expectTypeError(t, `fn main() { if 1 { } }`, "if condition must be bool")
	expectTypeError(t, `fn main() { while 1 { } }`, "while condition must be bool")
}

func TestCheckLetDeclMismatch(t *testing.T) {
	expectTypeError(t, `fn main() { let x: bool = 1; }`, "declared bool")
}

func TestCheckEmptyVecAdoptsDeclaredType(t *testing.T) {
	c, err := mustCheck(`fn main() { let v: Vec<bool> = vec![]; }`)
	if err != nil {
		t.Fatal(err)
	}
	let := c.Prog.Funcs["main"].Body[0].(*LetStmt)
	if !c.TypeOf(let.Init).Equal(VecOf(TypeBool)) {
		t.Fatalf("empty vec type = %s", c.TypeOf(let.Init))
	}
}

func TestCheckVecElementMismatch(t *testing.T) {
	expectTypeError(t, `fn main() { let v = vec![1, true]; }`, "share a type")
}

func TestCheckAssignMutability(t *testing.T) {
	expectTypeError(t, `fn main() { let x = 1; x = 2; }`, "not mutable")
	if _, err := mustCheck(`fn main() { let mut x = 1; x = 2; }`); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFieldAssignThroughSharedRefRejected(t *testing.T) {
	expectTypeError(t, `
struct S { a: i64 }
fn f(s: &S) { s.a = 1; }
fn main() { }
`, "through shared reference")
}

func TestCheckFieldAssignThroughMutRefAllowed(t *testing.T) {
	if _, err := mustCheck(`
struct S { a: i64 }
fn f(s: &mut S) { s.a = 1; }
fn main() { }
`); err != nil {
		t.Fatal(err)
	}
}

func TestCheckStructLiteral(t *testing.T) {
	expectTypeError(t, `
struct S { a: i64, b: bool }
fn main() { let s = S { a: 1 }; }
`, "must initialize all 2 fields")
	expectTypeError(t, `
struct S { a: i64 }
fn main() { let s = S { a: true }; }
`, "field a: have bool, want i64")
	expectTypeError(t, `fn main() { let s = Nope { a: 1 }; }`, "unknown struct")
}

func TestCheckCallArity(t *testing.T) {
	expectTypeError(t, `
fn f(a: i64) { }
fn main() { f(); }
`, "takes 1 arguments, got 0")
	expectTypeError(t, `
fn f(a: i64) { }
fn main() { f(true); }
`, "have bool, want i64")
	expectTypeError(t, `fn main() { nosuch(); }`, "unknown function")
}

func TestCheckBorrowArguments(t *testing.T) {
	expectTypeError(t, `
fn f(v: &mut Vec<i64>) { }
fn main() { let v = vec![1]; f(&mut v); }
`, "cannot mutably borrow immutable binding")
	if _, err := mustCheck(`
fn f(v: &mut Vec<i64>) { }
fn main() { let mut v = vec![1]; f(&mut v); }
`); err != nil {
		t.Fatal(err)
	}
	expectTypeError(t, `
fn f(v: &Vec<i64>) { }
fn main() { let v = vec![1]; f(v); }
`, "have Vec<i64>, want &Vec<i64>")
}

func TestCheckReturnPaths(t *testing.T) {
	expectTypeError(t, `
fn f() -> i64 { }
fn main() { }
`, "missing return")
	expectTypeError(t, `
fn f() -> i64 { if true { return 1; } }
fn main() { }
`, "missing return")
	if _, err := mustCheck(`
fn f(c: bool) -> i64 { if c { return 1; } else { return 2; } }
fn main() { }
`); err != nil {
		t.Fatal(err)
	}
	expectTypeError(t, `
fn f() -> i64 { return true; }
fn main() { }
`, "return bool from function returning i64")
	expectTypeError(t, `
fn f() -> i64 { return; }
fn main() { }
`, "return without value")
}

func TestCheckMethodResolution(t *testing.T) {
	expectTypeError(t, `
struct S { a: i64 }
fn main() { let s = S { a: 1 }; s.nope(); }
`, "has no method nope")
	expectTypeError(t, `
struct S { a: i64 }
impl S { fn assoc() { } }
fn main() { let s = S { a: 1 }; s.assoc(); }
`, "associated function")
	expectTypeError(t, `
struct S { a: i64 }
impl S { fn m(&mut self) { } }
fn main() { let s = S { a: 1 }; s.m(); }
`, "cannot mutably borrow immutable binding")
	if _, err := mustCheck(`
struct S { a: i64 }
impl S { fn m(&mut self) { } }
fn main() { let mut s = S { a: 1 }; s.m(); }
`); err != nil {
		t.Fatal(err)
	}
}

func TestCheckMethodThroughSharedRef(t *testing.T) {
	expectTypeError(t, `
struct S { a: i64 }
impl S {
    fn m(&mut self) { }
    fn caller(&self) { self.m(); }
}
fn main() { }
`, "requires &mut self but receiver is a shared reference")
}

func TestCheckConsumingMethodThroughRef(t *testing.T) {
	expectTypeError(t, `
struct S { a: i64 }
impl S {
    fn consume(self) { }
    fn caller(&self) { self.consume(); }
}
fn main() { }
`, "consumes self")
}

func TestCheckBuiltins(t *testing.T) {
	expectTypeError(t, `fn main() { assert(1); }`, "assert takes one bool")
	expectTypeError(t, `fn main() { let v = vec![1]; vec_len(v); }`, "vec_len takes &Vec<T>")
	expectTypeError(t, `fn main() { let mut v = vec![1]; vec_push(&v, 1); }`, "vec_push takes (&mut Vec<T>, T)")
	expectTypeError(t, `fn main() { let mut v = vec![1]; vec_push(&mut v, true); }`, "vec_push element")
	expectTypeError(t, `fn main() { let v = vec![vec![1]]; let x = vec_get(&v, 0); }`, "copyable element")
	expectTypeError(t, `fn main() { let x = declassify(1, 2); }`, "string literal")
	expectTypeError(t, `fn main() { assert_label_max(1); }`, "assert_label_max takes")
	if _, err := mustCheck(`
fn main() {
    let mut v = vec![1];
    vec_push(&mut v, 2);
    let n = vec_len(&v);
    let x = vec_get(&v, 0);
    assert(n == 2);
    println(v, n, x);
    let d = declassify(5, "public");
    assert_label_max(d, "public");
}
`); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRefsNotFirstClass(t *testing.T) {
	expectTypeError(t, `fn main() { let v = vec![1]; let r = &v; }`, "let bindings cannot hold references")
	expectTypeError(t, `
struct S { r: &i64 }
fn main() { }
`, "reference-typed fields")
	expectTypeError(t, `
fn f() -> &i64 { }
fn main() { }
`, "returning references")
}

func TestCheckDuplicateParam(t *testing.T) {
	expectTypeError(t, `fn f(a: i64, a: bool) { } fn main() { }`, "duplicate parameter")
}

func TestCheckLetUnitRejected(t *testing.T) {
	expectTypeError(t, `
fn f() { }
fn main() { let x = f(); }
`, "cannot bind unit")
}

func TestCheckFieldOnNonStruct(t *testing.T) {
	expectTypeError(t, `fn main() { let x = 1; let y = x.f; }`, "is not a struct")
}

func TestIsCopySemantics(t *testing.T) {
	if !TypeI64.IsCopy() || !TypeBool.IsCopy() || !TypeStr.IsCopy() || !TypeUnit.IsCopy() {
		t.Fatal("scalars must be Copy")
	}
	if VecOf(TypeI64).IsCopy() {
		t.Fatal("Vec must move")
	}
	if (Type{Name: "S"}).IsCopy() {
		t.Fatal("structs must move")
	}
	if !RefTo(VecOf(TypeI64), true).IsCopy() {
		t.Fatal("borrows must be Copy")
	}
}
