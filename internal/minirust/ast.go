package minirust

import (
	"fmt"
	"strings"
)

// Type is a minirust type. Exactly one alternative is populated.
type Type struct {
	// Name is "i64", "bool", "str", "unit", or a struct name.
	Name string
	// Vec, when non-nil, makes this Vec<Elem> (Name is empty).
	Vec *Type
	// Ref marks a borrow: &T (Mut=false) or &mut T (Mut=true). Borrow
	// types appear only in parameter positions.
	Ref *Type
	Mut bool
}

// Builtin type constructors.
var (
	TypeI64  = Type{Name: "i64"}
	TypeBool = Type{Name: "bool"}
	TypeStr  = Type{Name: "str"}
	TypeUnit = Type{Name: "unit"}
)

// VecOf builds Vec<elem>.
func VecOf(elem Type) Type { return Type{Vec: &elem} }

// RefTo builds &T or &mut T.
func RefTo(t Type, mut bool) Type { return Type{Ref: &t, Mut: mut} }

// IsRef reports whether the type is a borrow.
func (t Type) IsRef() bool { return t.Ref != nil }

// IsVec reports whether the type is a vector.
func (t Type) IsVec() bool { return t.Vec != nil }

// IsUnit reports whether the type is unit.
func (t Type) IsUnit() bool { return t.Name == "unit" && t.Vec == nil && t.Ref == nil }

// IsCopy reports whether values of the type are copied rather than moved
// (scalars and borrows; everything else is a move type — the property the
// ownership analysis keys on).
func (t Type) IsCopy() bool {
	if t.Ref != nil {
		return true
	}
	if t.Vec != nil {
		return false
	}
	switch t.Name {
	case "i64", "bool", "str", "unit":
		return true
	}
	return false // user structs move
}

// Equal reports structural type equality.
func (t Type) Equal(o Type) bool {
	if (t.Vec == nil) != (o.Vec == nil) || (t.Ref == nil) != (o.Ref == nil) {
		return false
	}
	if t.Vec != nil {
		return t.Vec.Equal(*o.Vec)
	}
	if t.Ref != nil {
		return t.Mut == o.Mut && t.Ref.Equal(*o.Ref)
	}
	return t.Name == o.Name
}

// String renders the type in source syntax.
func (t Type) String() string {
	switch {
	case t.Ref != nil && t.Mut:
		return "&mut " + t.Ref.String()
	case t.Ref != nil:
		return "&" + t.Ref.String()
	case t.Vec != nil:
		return "Vec<" + t.Vec.String() + ">"
	default:
		return t.Name
	}
}

// Program is a parsed compilation unit.
type Program struct {
	// LabelOrder is the optional `labels a < b < c;` declaration giving
	// the security lattice; empty means the default public < secret.
	LabelOrder []string
	Structs    map[string]*StructDef
	Funcs      map[string]*FuncDef // free functions and methods (qualified)
	// Order preserves declaration order of functions for reporting.
	Order []string
}

// StructDef is a struct declaration.
type StructDef struct {
	Name   string
	Fields []Field
	Pos    Pos
}

// Field is one struct field.
type Field struct {
	Name string
	Type Type
}

// FieldType looks up a field's type.
func (s *StructDef) FieldType(name string) (Type, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f.Type, true
		}
	}
	return Type{}, false
}

// FuncDef is a function or method definition. Methods are stored under the
// qualified name "Struct::method" with the receiver as the first
// parameter.
type FuncDef struct {
	Name    string // qualified name
	Params  []Param
	Ret     Type
	Body    []Stmt
	Pos     Pos
	Recv    string // struct name for methods, "" for free functions
	IsAssoc bool   // associated function without self (Struct::new)
}

// Param is one function parameter.
type Param struct {
	Name string
	Type Type
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	Position() Pos
}

// LetStmt is `let [mut] x [: T] = expr;` optionally annotated with a
// security label (`#[label(l)]`).
type LetStmt struct {
	Name    string
	Mut     bool
	Decl    *Type // nil = inferred
	Init    Expr
	Label   string // "" = unlabeled (defaults to lattice bottom)
	Pos     Pos
	SetType Type // filled by the type checker
}

// AssignStmt is `lvalue = expr;` where lvalue is a variable or a field
// path rooted at a variable.
type AssignStmt struct {
	Target LValue
	Value  Expr
	Pos    Pos
}

// LValue is a variable with an optional field path (x, x.f, x.f.g).
type LValue struct {
	Root string
	Path []string
	Pos  Pos
}

// String renders the lvalue.
func (lv LValue) String() string {
	if len(lv.Path) == 0 {
		return lv.Root
	}
	return lv.Root + "." + strings.Join(lv.Path, ".")
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// IfStmt is `if cond { } [else { }]`.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

// WhileStmt is `while cond { }`.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Pos  Pos
}

// ReturnStmt is `return [expr];`.
type ReturnStmt struct {
	Value Expr // nil for bare return
	Pos   Pos
}

func (*LetStmt) stmtNode()    {}
func (*AssignStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode() {}

// Position implements Stmt.
func (s *LetStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *AssignStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *ExprStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *IfStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *WhileStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *ReturnStmt) Position() Pos { return s.Pos }

// Expr is an expression node.
type Expr interface {
	exprNode()
	Position() Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Pos   Pos
}

// BoolLit is true/false.
type BoolLit struct {
	Value bool
	Pos   Pos
}

// StrLit is a string literal.
type StrLit struct {
	Value string
	Pos   Pos
}

// VecLit is vec![e1, e2, ...].
type VecLit struct {
	Elems []Expr
	Pos   Pos
}

// VarRef reads a variable.
type VarRef struct {
	Name string
	Pos  Pos
}

// FieldAccess reads expr.field.
type FieldAccess struct {
	X     Expr
	Field string
	Pos   Pos
}

// BorrowExpr is &x or &mut x (argument position only).
type BorrowExpr struct {
	X   Expr // VarRef or FieldAccess
	Mut bool
	Pos Pos
}

// CallExpr calls a free or associated function: name(args) or
// Struct::assoc(args). Builtins (println, assert, …) also land here.
type CallExpr struct {
	Name string // possibly qualified with ::
	Args []Expr
	Pos  Pos
}

// MethodCall is recv.method(args); the receiver is auto-borrowed per the
// method's self parameter.
type MethodCall struct {
	Recv   Expr
	Method string
	Args   []Expr
	Pos    Pos
}

// StructLit is Name { field: expr, ... }.
type StructLit struct {
	Name   string
	Fields map[string]Expr
	Pos    Pos
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   Kind // Plus..Ge, AmpAmp, Pipe2
	L, R Expr
	Pos  Pos
}

// UnaryExpr is !x or -x.
type UnaryExpr struct {
	Op  Kind // Bang or Minus
	X   Expr
	Pos Pos
}

func (*IntLit) exprNode()      {}
func (*BoolLit) exprNode()     {}
func (*StrLit) exprNode()      {}
func (*VecLit) exprNode()      {}
func (*VarRef) exprNode()      {}
func (*FieldAccess) exprNode() {}
func (*BorrowExpr) exprNode()  {}
func (*CallExpr) exprNode()    {}
func (*MethodCall) exprNode()  {}
func (*StructLit) exprNode()   {}
func (*BinaryExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}

// Position implements Expr.
func (e *IntLit) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *BoolLit) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *StrLit) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *VecLit) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *VarRef) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *FieldAccess) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *BorrowExpr) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *CallExpr) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *MethodCall) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *StructLit) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *BinaryExpr) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *UnaryExpr) Position() Pos { return e.Pos }

// Builtins recognized by the checker, interpreter, and IFC analysis.
// println is the public output channel; assert checks a boolean at run
// time; vec_len/vec_get/vec_push operate on vectors; declassify lowers a
// value's security label (a trusted operation); assert_label_max is a
// static assertion checked by the verifier.
var Builtins = map[string]bool{
	"println":          true,
	"assert":           true,
	"vec_len":          true,
	"vec_get":          true,
	"vec_push":         true,
	"declassify":       true,
	"assert_label_max": true,
}

// QualifiedName joins a struct and method name.
func QualifiedName(recv, method string) string {
	return fmt.Sprintf("%s::%s", recv, method)
}
