package minirust

import "fmt"

// BorrowError is an ownership-discipline violation: use after move, move
// out of borrowed content, conflicting uses in one call, or a move inside
// a loop. These are the errors rustc's borrow checker reports, and they
// are exactly what defeats the paper's §4 alias-laundering exploit: line
// 17's println!(nonsec) is rejected because nonsec was moved at line 14.
type BorrowError struct {
	Pos     Pos
	Msg     string
	MovedAt Pos // position of the move, when relevant
}

func (e *BorrowError) Error() string {
	if e.MovedAt != (Pos{}) {
		return fmt.Sprintf("%s: borrow check error: %s (value moved at %s)", e.Pos, e.Msg, e.MovedAt)
	}
	return fmt.Sprintf("%s: borrow check error: %s", e.Pos, e.Msg)
}

// moveState tracks the ownership state of one binding.
type moveState int

const (
	live moveState = iota
	moved
	maybeMoved // moved on some but not all paths
)

// binding is the borrow checker's per-variable state.
type binding struct {
	typ     Type
	state   moveState
	movedAt Pos
}

// ownEnv is a flow-sensitive environment, copied at branches.
type ownEnv map[string]*binding

func (e ownEnv) clone() ownEnv {
	out := make(ownEnv, len(e))
	for k, v := range e {
		cp := *v
		out[k] = &cp
	}
	return out
}

// join merges two branch results into the conservative post-state.
func (e ownEnv) join(o ownEnv) ownEnv {
	out := make(ownEnv, len(e))
	for k, a := range e {
		b, ok := o[k]
		if !ok {
			continue // declared in one branch only: out of scope after
		}
		cp := *a
		if a.state != b.state {
			cp.state = maybeMoved
			if a.state == moved || a.state == maybeMoved {
				cp.movedAt = a.movedAt
			} else {
				cp.movedAt = b.movedAt
			}
		}
		out[k] = &cp
	}
	return out
}

// BorrowCheck verifies the ownership discipline of every function in a
// type-checked program.
func BorrowCheck(c *Checked) error {
	for _, name := range c.Prog.Order {
		bc := &borrowChecker{checked: c}
		if err := bc.checkFunc(c.Prog.Funcs[name]); err != nil {
			return err
		}
	}
	return nil
}

type borrowChecker struct {
	checked *Checked
	// stmtMoves/stmtBorrows detect conflicts within a single statement
	// (f(x, &x) or f(x, x)).
	stmtMoves   map[string]Pos
	stmtBorrows map[string]Pos
}

func (bc *borrowChecker) errf(pos Pos, format string, args ...any) error {
	return &BorrowError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (bc *borrowChecker) checkFunc(f *FuncDef) error {
	env := make(ownEnv)
	for _, p := range f.Params {
		env[p.Name] = &binding{typ: p.Type, state: live}
	}
	_, _, err := bc.checkBlock(f.Body, env)
	return err
}

// checkBlock analyzes the statements, stopping at one that definitely
// diverges (returns on every path). The bool reports that divergence so
// branch joins can ignore diverged arms, as rustc does.
func (bc *borrowChecker) checkBlock(stmts []Stmt, env ownEnv) (ownEnv, bool, error) {
	for _, s := range stmts {
		var term bool
		var err error
		env, term, err = bc.checkStmt(s, env)
		if err != nil {
			return nil, false, err
		}
		if term {
			return env, true, nil
		}
	}
	return env, false, nil
}

func (bc *borrowChecker) beginStmt() {
	bc.stmtMoves = make(map[string]Pos)
	bc.stmtBorrows = make(map[string]Pos)
}

func (bc *borrowChecker) checkStmt(s Stmt, env ownEnv) (ownEnv, bool, error) {
	switch v := s.(type) {
	case *LetStmt:
		bc.beginStmt()
		if err := bc.useExpr(v.Init, env, true); err != nil {
			return nil, false, err
		}
		env[v.Name] = &binding{typ: v.SetType, state: live}
		return env, false, nil

	case *AssignStmt:
		bc.beginStmt()
		if err := bc.useExpr(v.Value, env, true); err != nil {
			return nil, false, err
		}
		b, ok := env[v.Target.Root]
		if !ok {
			return nil, false, bc.errf(v.Pos, "unknown variable %s", v.Target.Root)
		}
		if len(v.Target.Path) == 0 {
			// Whole-variable assignment revives a moved binding, as in
			// Rust (`x = new_value` after a move is legal for `let mut`).
			b.state = live
			return env, false, nil
		}
		// Field assignment requires the root to be live.
		if b.state != live {
			return nil, false, &BorrowError{Pos: v.Pos, MovedAt: b.movedAt,
				Msg: fmt.Sprintf("use of moved value %s", v.Target.Root)}
		}
		return env, false, nil

	case *ExprStmt:
		bc.beginStmt()
		if err := bc.useExpr(v.X, env, true); err != nil {
			return nil, false, err
		}
		return env, false, nil

	case *ReturnStmt:
		bc.beginStmt()
		if v.Value != nil {
			if err := bc.useExpr(v.Value, env, true); err != nil {
				return nil, false, err
			}
		}
		return env, true, nil

	case *IfStmt:
		bc.beginStmt()
		if err := bc.useExpr(v.Cond, env, true); err != nil {
			return nil, false, err
		}
		thenEnv, thenTerm, err := bc.checkBlock(v.Then, env.clone())
		if err != nil {
			return nil, false, err
		}
		elseEnv := env.clone()
		elseTerm := false
		if v.Else != nil {
			elseEnv, elseTerm, err = bc.checkBlock(v.Else, elseEnv)
			if err != nil {
				return nil, false, err
			}
		}
		// A diverged arm contributes nothing to the join (rustc's
		// behaviour: `if c { return take(v); } take(v)` is legal).
		switch {
		case thenTerm && elseTerm:
			return env, true, nil
		case thenTerm:
			return elseEnv, false, nil
		case elseTerm:
			return thenEnv, false, nil
		default:
			return thenEnv.join(elseEnv), false, nil
		}

	case *WhileStmt:
		bc.beginStmt()
		if err := bc.useExpr(v.Cond, env, true); err != nil {
			return nil, false, err
		}
		// First pass: the loop body from the entry state.
		once, _, err := bc.checkBlock(v.Body, env.clone())
		if err != nil {
			return nil, false, err
		}
		// Second pass simulates the next iteration: anything the body
		// moved is now moved at the top of the loop, so a use reports
		// "moved in a previous iteration" — rustc's exact behaviour.
		iter := env.clone().join(once)
		if _, _, err := bc.checkBlock(v.Body, iter.clone()); err != nil {
			if be, ok := err.(*BorrowError); ok {
				be.Msg += " (moved in a previous loop iteration)"
			}
			return nil, false, err
		}
		// The cond must also survive re-evaluation.
		bc.beginStmt()
		if err := bc.useExpr(v.Cond, iter, true); err != nil {
			return nil, false, err
		}
		return env.join(once), false, nil
	}
	return nil, false, bc.errf(s.Position(), "unhandled statement")
}

// useExpr analyzes an expression for ownership effects. byValue reports
// whether the expression's value is consumed (moved if its type is a move
// type) rather than merely read.
func (bc *borrowChecker) useExpr(e Expr, env ownEnv, byValue bool) error {
	switch v := e.(type) {
	case *IntLit, *BoolLit, *StrLit:
		return nil

	case *VecLit:
		for _, el := range v.Elems {
			if err := bc.useExpr(el, env, true); err != nil {
				return err
			}
		}
		return nil

	case *VarRef:
		return bc.usePath(v.Name, nil, v.Pos, env, byValue && !bc.checked.TypeOf(v).IsCopy())

	case *FieldAccess:
		root, path, ok := fieldPath(v)
		if !ok {
			// Field of a call result etc.: evaluate inner by value.
			return bc.useExpr(v.X, env, true)
		}
		moves := byValue && !bc.checked.TypeOf(v).IsCopy()
		if moves {
			// Moving a field out through a reference is forbidden.
			if bc.rootedInRef(v, env) {
				return bc.errf(v.Pos, "cannot move %s out of borrowed content", LValue{Root: root, Path: path})
			}
		}
		return bc.usePath(root, path, v.Pos, env, moves)

	case *BorrowExpr:
		root, _, ok := exprRoot(v.X)
		if !ok {
			return bc.errf(v.Pos, "cannot borrow this expression")
		}
		if err := bc.usePath(root, nil, v.Pos, env, false); err != nil {
			return err
		}
		if p, conflict := bc.stmtMoves[root]; conflict {
			return bc.errf(v.Pos, "cannot borrow %s: it is also moved in this statement (at %s)", root, p)
		}
		bc.stmtBorrows[root] = v.Pos
		return nil

	case *UnaryExpr:
		return bc.useExpr(v.X, env, true)

	case *BinaryExpr:
		if err := bc.useExpr(v.L, env, true); err != nil {
			return err
		}
		return bc.useExpr(v.R, env, true)

	case *StructLit:
		for _, fe := range v.Fields {
			if err := bc.useExpr(fe, env, true); err != nil {
				return err
			}
		}
		return nil

	case *CallExpr:
		return bc.useCall(v, env)

	case *MethodCall:
		return bc.useMethodCall(v, env)
	}
	return bc.errf(e.Position(), "unhandled expression")
}

// readOnlyBuiltins read their arguments without consuming them (println!
// in Rust takes arguments by reference under the hood).
var readOnlyBuiltins = map[string]bool{
	"println":          true,
	"assert":           true,
	"assert_label_max": true,
}

func (bc *borrowChecker) useCall(v *CallExpr, env ownEnv) error {
	if readOnlyBuiltins[v.Name] {
		for _, a := range v.Args {
			if err := bc.useExpr(a, env, false); err != nil {
				return err
			}
		}
		return nil
	}
	// Every other callee (builtin or user) consumes by-value arguments;
	// explicit BorrowExprs handle themselves.
	for _, a := range v.Args {
		if err := bc.useExpr(a, env, true); err != nil {
			return err
		}
	}
	return nil
}

func (bc *borrowChecker) useMethodCall(v *MethodCall, env ownEnv) error {
	base := bc.checked.TypeOf(v.Recv)
	for base.IsRef() {
		base = *base.Ref
	}
	f := bc.checked.Prog.Funcs[QualifiedName(base.Name, v.Method)]
	selfByValue := f != nil && !f.Params[0].Type.IsRef()
	if selfByValue {
		if err := bc.useExpr(v.Recv, env, true); err != nil {
			return err
		}
	} else {
		// &self / &mut self: the receiver is borrowed for the call.
		if root, _, ok := exprRoot(v.Recv); ok {
			if err := bc.usePath(root, nil, v.Pos, env, false); err != nil {
				return err
			}
			if p, conflict := bc.stmtMoves[root]; conflict {
				return bc.errf(v.Pos, "cannot borrow %s for method call: it is also moved in this statement (at %s)", root, p)
			}
			bc.stmtBorrows[root] = v.Pos
		} else if err := bc.useExpr(v.Recv, env, false); err != nil {
			return err
		}
	}
	for _, a := range v.Args {
		if err := bc.useExpr(a, env, true); err != nil {
			return err
		}
	}
	return nil
}

// usePath records a use of root (optionally a field path for messages).
// moves=true consumes the binding.
func (bc *borrowChecker) usePath(root string, path []string, pos Pos, env ownEnv, moves bool) error {
	b, ok := env[root]
	if !ok {
		return bc.errf(pos, "unknown variable %s", root)
	}
	name := LValue{Root: root, Path: path}.String()
	switch b.state {
	case moved:
		return &BorrowError{Pos: pos, MovedAt: b.movedAt,
			Msg: fmt.Sprintf("use of moved value %s", name)}
	case maybeMoved:
		return &BorrowError{Pos: pos, MovedAt: b.movedAt,
			Msg: fmt.Sprintf("use of possibly-moved value %s (moved on some control-flow path)", name)}
	}
	if moves {
		if p, conflict := bc.stmtBorrows[root]; conflict {
			return bc.errf(pos, "cannot move %s: it is also borrowed in this statement (at %s)", name, p)
		}
		// A second move of the same root within one statement is caught
		// by the state check above (the first move already marked it).
		bc.stmtMoves[root] = pos
		b.state = moved
		b.movedAt = pos
	}
	return nil
}

// rootedInRef reports whether a field path passes through a reference-
// typed base (moving out of it would be moving out of borrowed content).
func (bc *borrowChecker) rootedInRef(e Expr, env ownEnv) bool {
	switch v := e.(type) {
	case *VarRef:
		if b, ok := env[v.Name]; ok {
			return b.typ.IsRef()
		}
		return false
	case *FieldAccess:
		if bc.checked.TypeOf(v.X).IsRef() {
			return true
		}
		return bc.rootedInRef(v.X, env)
	default:
		return false
	}
}

// fieldPath extracts (root, path) from a chain of field accesses over a
// variable.
func fieldPath(e *FieldAccess) (string, []string, bool) {
	var path []string
	cur := Expr(e)
	for {
		switch v := cur.(type) {
		case *FieldAccess:
			path = append([]string{v.Field}, path...)
			cur = v.X
		case *VarRef:
			return v.Name, path, true
		default:
			return "", nil, false
		}
	}
}

// exprRoot finds the root variable of a place expression.
func exprRoot(e Expr) (string, []string, bool) {
	switch v := e.(type) {
	case *VarRef:
		return v.Name, nil, true
	case *FieldAccess:
		return fieldPath(v)
	default:
		return "", nil, false
	}
}
