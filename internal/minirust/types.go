package minirust

import (
	"fmt"
)

// TypeError is a semantic error with position.
type TypeError struct {
	Pos Pos
	Msg string
}

func (e *TypeError) Error() string { return fmt.Sprintf("%s: type error: %s", e.Pos, e.Msg) }

// Checked is the output of the type checker: the program plus a type for
// every expression, consumed by the borrow checker, the interpreter, and
// the IFC analysis.
type Checked struct {
	Prog  *Program
	Types map[Expr]Type
}

// TypeOf returns the checked type of an expression.
func (c *Checked) TypeOf(e Expr) Type { return c.Types[e] }

// Check type-checks the program. It requires a main function.
func Check(prog *Program) (*Checked, error) {
	c := &checker{
		prog:  prog,
		types: make(map[Expr]Type),
	}
	// Validate struct field types.
	for _, s := range prog.Structs {
		for _, f := range s.Fields {
			if err := c.validType(f.Type, s.Pos); err != nil {
				return nil, err
			}
			if f.Type.IsRef() {
				return nil, &TypeError{Pos: s.Pos, Msg: fmt.Sprintf("struct %s field %s: reference-typed fields are not supported (no lifetimes)", s.Name, f.Name)}
			}
		}
	}
	// Validate signatures.
	for _, name := range prog.Order {
		f := prog.Funcs[name]
		seen := map[string]bool{}
		for _, p := range f.Params {
			if seen[p.Name] {
				return nil, &TypeError{Pos: f.Pos, Msg: fmt.Sprintf("%s: duplicate parameter %s", f.Name, p.Name)}
			}
			seen[p.Name] = true
			if err := c.validType(p.Type, f.Pos); err != nil {
				return nil, err
			}
		}
		if err := c.validType(f.Ret, f.Pos); err != nil {
			return nil, err
		}
		if f.Ret.IsRef() {
			return nil, &TypeError{Pos: f.Pos, Msg: fmt.Sprintf("%s: returning references is not supported (no lifetimes)", f.Name)}
		}
	}
	if _, ok := prog.Funcs["main"]; !ok {
		return nil, &TypeError{Pos: Pos{1, 1}, Msg: "no main function"}
	}
	// Check bodies.
	for _, name := range prog.Order {
		if err := c.checkFunc(prog.Funcs[name]); err != nil {
			return nil, err
		}
	}
	return &Checked{Prog: prog, Types: c.types}, nil
}

type checker struct {
	prog  *Program
	types map[Expr]Type
	fn    *FuncDef
}

type varInfo struct {
	typ Type
	mut bool
}

// scope is a lexical scope chain.
type scope struct {
	vars   map[string]*varInfo
	parent *scope
}

func newScope(parent *scope) *scope {
	return &scope{vars: make(map[string]*varInfo), parent: parent}
}

func (s *scope) lookup(name string) (*varInfo, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (c *checker) validType(t Type, pos Pos) error {
	switch {
	case t.Ref != nil:
		return c.validType(*t.Ref, pos)
	case t.Vec != nil:
		return c.validType(*t.Vec, pos)
	case t.Name == "i64" || t.Name == "bool" || t.Name == "str" || t.Name == "unit":
		return nil
	default:
		if _, ok := c.prog.Structs[t.Name]; !ok {
			return &TypeError{Pos: pos, Msg: fmt.Sprintf("unknown type %s", t.Name)}
		}
		return nil
	}
}

func (c *checker) errf(pos Pos, format string, args ...any) error {
	return &TypeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) checkFunc(f *FuncDef) error {
	c.fn = f
	sc := newScope(nil)
	for _, p := range f.Params {
		// Parameters are mutable bindings if they are &mut borrows (the
		// pointee is mutable through them); by-value params are
		// rebindable in Rust only with mut, which we default to allowed
		// for simplicity of the examples, except borrows stay fixed.
		sc.vars[p.Name] = &varInfo{typ: p.Type, mut: true}
	}
	if err := c.checkBlock(f.Body, sc); err != nil {
		return err
	}
	if !f.Ret.IsUnit() && !blockReturns(f.Body) {
		return c.errf(f.Pos, "%s: missing return on some path (returns %s)", f.Name, f.Ret)
	}
	return nil
}

// blockReturns reports whether every path through the block returns.
func blockReturns(stmts []Stmt) bool {
	for _, s := range stmts {
		switch v := s.(type) {
		case *ReturnStmt:
			return true
		case *IfStmt:
			if v.Else != nil && blockReturns(v.Then) && blockReturns(v.Else) {
				return true
			}
		}
	}
	return false
}

func (c *checker) checkBlock(stmts []Stmt, sc *scope) error {
	for _, s := range stmts {
		if err := c.checkStmt(s, sc); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt, sc *scope) error {
	switch v := s.(type) {
	case *LetStmt:
		t, err := c.checkExpr(v.Init, sc)
		if err != nil {
			return err
		}
		if t.IsRef() {
			return c.errf(v.Pos, "let bindings cannot hold references (borrows are call-scoped)")
		}
		if v.Decl != nil {
			if err := c.validType(*v.Decl, v.Pos); err != nil {
				return err
			}
			if !v.Decl.Equal(t) {
				// Empty vec literal adopts the declared type.
				if lit, ok := v.Init.(*VecLit); ok && len(lit.Elems) == 0 && v.Decl.IsVec() {
					t = *v.Decl
					c.types[v.Init] = t
				} else {
					return c.errf(v.Pos, "let %s: declared %s but initializer has type %s", v.Name, v.Decl, t)
				}
			}
		}
		if t.IsUnit() {
			return c.errf(v.Pos, "let %s: cannot bind unit value", v.Name)
		}
		v.SetType = t
		sc.vars[v.Name] = &varInfo{typ: t, mut: v.Mut}
		return nil

	case *AssignStmt:
		targetT, rootInfo, err := c.lvalueType(v.Target, sc)
		if err != nil {
			return err
		}
		if !rootInfo.mut && !rootInfo.typ.IsRef() {
			return c.errf(v.Pos, "cannot assign to %s: binding is not mutable", v.Target)
		}
		if rootInfo.typ.IsRef() && !rootInfo.typ.Mut && len(v.Target.Path) > 0 {
			return c.errf(v.Pos, "cannot assign through shared reference %s", v.Target.Root)
		}
		valT, err := c.checkExpr(v.Value, sc)
		if err != nil {
			return err
		}
		if !targetT.Equal(valT) {
			if lit, ok := v.Value.(*VecLit); ok && len(lit.Elems) == 0 && targetT.IsVec() {
				c.types[v.Value] = targetT
			} else {
				return c.errf(v.Pos, "assign to %s: have %s, want %s", v.Target, valT, targetT)
			}
		}
		return nil

	case *ExprStmt:
		_, err := c.checkExpr(v.X, sc)
		return err

	case *IfStmt:
		t, err := c.checkExpr(v.Cond, sc)
		if err != nil {
			return err
		}
		if !t.Equal(TypeBool) {
			return c.errf(v.Pos, "if condition must be bool, have %s", t)
		}
		if err := c.checkBlock(v.Then, newScope(sc)); err != nil {
			return err
		}
		if v.Else != nil {
			return c.checkBlock(v.Else, newScope(sc))
		}
		return nil

	case *WhileStmt:
		t, err := c.checkExpr(v.Cond, sc)
		if err != nil {
			return err
		}
		if !t.Equal(TypeBool) {
			return c.errf(v.Pos, "while condition must be bool, have %s", t)
		}
		return c.checkBlock(v.Body, newScope(sc))

	case *ReturnStmt:
		want := c.fn.Ret
		if v.Value == nil {
			if !want.IsUnit() {
				return c.errf(v.Pos, "return without value in function returning %s", want)
			}
			return nil
		}
		t, err := c.checkExpr(v.Value, sc)
		if err != nil {
			return err
		}
		if !t.Equal(want) {
			if lit, ok := v.Value.(*VecLit); ok && len(lit.Elems) == 0 && want.IsVec() {
				c.types[v.Value] = want
				return nil
			}
			return c.errf(v.Pos, "return %s from function returning %s", t, want)
		}
		return nil
	}
	return c.errf(s.Position(), "unhandled statement")
}

// lvalueType resolves an assignment target, returning the type of the
// final path element and the root variable's info.
func (c *checker) lvalueType(lv LValue, sc *scope) (Type, *varInfo, error) {
	info, ok := sc.lookup(lv.Root)
	if !ok {
		return Type{}, nil, c.errf(lv.Pos, "unknown variable %s", lv.Root)
	}
	t := info.typ
	for _, field := range lv.Path {
		// Auto-deref through borrows.
		for t.IsRef() {
			t = *t.Ref
		}
		sd, ok := c.prog.Structs[t.Name]
		if !ok {
			return Type{}, nil, c.errf(lv.Pos, "%s is not a struct (cannot access field %s)", t, field)
		}
		ft, ok := sd.FieldType(field)
		if !ok {
			return Type{}, nil, c.errf(lv.Pos, "struct %s has no field %s", t.Name, field)
		}
		t = ft
	}
	return t, info, nil
}

func (c *checker) checkExpr(e Expr, sc *scope) (Type, error) {
	t, err := c.exprType(e, sc)
	if err != nil {
		return Type{}, err
	}
	c.types[e] = t
	return t, nil
}

func (c *checker) exprType(e Expr, sc *scope) (Type, error) {
	switch v := e.(type) {
	case *IntLit:
		return TypeI64, nil
	case *BoolLit:
		return TypeBool, nil
	case *StrLit:
		return TypeStr, nil

	case *VecLit:
		if len(v.Elems) == 0 {
			// Type adopted from context (let/assign/return/param);
			// default to Vec<i64> when no context adjusts it.
			return VecOf(TypeI64), nil
		}
		first, err := c.checkExpr(v.Elems[0], sc)
		if err != nil {
			return Type{}, err
		}
		for _, el := range v.Elems[1:] {
			t, err := c.checkExpr(el, sc)
			if err != nil {
				return Type{}, err
			}
			if !t.Equal(first) {
				return Type{}, c.errf(el.Position(), "vec! elements must share a type: %s vs %s", first, t)
			}
		}
		return VecOf(first), nil

	case *VarRef:
		info, ok := sc.lookup(v.Name)
		if !ok {
			return Type{}, c.errf(v.Pos, "unknown variable %s", v.Name)
		}
		return info.typ, nil

	case *FieldAccess:
		xt, err := c.checkExpr(v.X, sc)
		if err != nil {
			return Type{}, err
		}
		for xt.IsRef() {
			xt = *xt.Ref
		}
		sd, ok := c.prog.Structs[xt.Name]
		if !ok {
			return Type{}, c.errf(v.Pos, "%s is not a struct (cannot access field %s)", xt, v.Field)
		}
		ft, ok := sd.FieldType(v.Field)
		if !ok {
			return Type{}, c.errf(v.Pos, "struct %s has no field %s", xt.Name, v.Field)
		}
		return ft, nil

	case *BorrowExpr:
		xt, err := c.checkExpr(v.X, sc)
		if err != nil {
			return Type{}, err
		}
		if xt.IsRef() {
			return Type{}, c.errf(v.Pos, "cannot borrow a borrow")
		}
		if v.Mut {
			if err := c.requireMutPath(v.X, sc); err != nil {
				return Type{}, err
			}
		}
		return RefTo(xt, v.Mut), nil

	case *UnaryExpr:
		xt, err := c.checkExpr(v.X, sc)
		if err != nil {
			return Type{}, err
		}
		switch v.Op {
		case Bang:
			if !xt.Equal(TypeBool) {
				return Type{}, c.errf(v.Pos, "! requires bool, have %s", xt)
			}
			return TypeBool, nil
		case Minus:
			if !xt.Equal(TypeI64) {
				return Type{}, c.errf(v.Pos, "- requires i64, have %s", xt)
			}
			return TypeI64, nil
		}
		return Type{}, c.errf(v.Pos, "unknown unary operator")

	case *BinaryExpr:
		lt, err := c.checkExpr(v.L, sc)
		if err != nil {
			return Type{}, err
		}
		rt, err := c.checkExpr(v.R, sc)
		if err != nil {
			return Type{}, err
		}
		switch v.Op {
		case Plus, Minus, Star, Slash, Percent:
			if !lt.Equal(TypeI64) || !rt.Equal(TypeI64) {
				return Type{}, c.errf(v.Pos, "arithmetic requires i64 operands, have %s and %s", lt, rt)
			}
			return TypeI64, nil
		case Lt, Gt, Le, Ge:
			if !lt.Equal(TypeI64) || !rt.Equal(TypeI64) {
				return Type{}, c.errf(v.Pos, "comparison requires i64 operands, have %s and %s", lt, rt)
			}
			return TypeBool, nil
		case Eq, Ne:
			if !lt.Equal(rt) {
				return Type{}, c.errf(v.Pos, "cannot compare %s with %s", lt, rt)
			}
			if lt.IsVec() || c.prog.Structs[lt.Name] != nil {
				return Type{}, c.errf(v.Pos, "equality on %s is not supported", lt)
			}
			return TypeBool, nil
		case AmpAmp, Pipe2:
			if !lt.Equal(TypeBool) || !rt.Equal(TypeBool) {
				return Type{}, c.errf(v.Pos, "logical operator requires bool operands")
			}
			return TypeBool, nil
		}
		return Type{}, c.errf(v.Pos, "unknown binary operator")

	case *StructLit:
		sd, ok := c.prog.Structs[v.Name]
		if !ok {
			return Type{}, c.errf(v.Pos, "unknown struct %s", v.Name)
		}
		if len(v.Fields) != len(sd.Fields) {
			return Type{}, c.errf(v.Pos, "struct %s literal must initialize all %d fields", v.Name, len(sd.Fields))
		}
		for name, fe := range v.Fields {
			ft, ok := sd.FieldType(name)
			if !ok {
				return Type{}, c.errf(fe.Position(), "struct %s has no field %s", v.Name, name)
			}
			t, err := c.checkExpr(fe, sc)
			if err != nil {
				return Type{}, err
			}
			if !t.Equal(ft) {
				if lit, isLit := fe.(*VecLit); isLit && len(lit.Elems) == 0 && ft.IsVec() {
					c.types[fe] = ft
					continue
				}
				return Type{}, c.errf(fe.Position(), "field %s: have %s, want %s", name, t, ft)
			}
		}
		return Type{Name: v.Name}, nil

	case *CallExpr:
		return c.checkCall(v, sc)

	case *MethodCall:
		return c.checkMethodCall(v, sc)
	}
	return Type{}, c.errf(e.Position(), "unhandled expression")
}

// requireMutPath verifies that &mut of the given place is legal: the root
// binding must be mut, or the path must pass through a &mut reference.
func (c *checker) requireMutPath(e Expr, sc *scope) error {
	switch v := e.(type) {
	case *VarRef:
		info, ok := sc.lookup(v.Name)
		if !ok {
			return c.errf(v.Pos, "unknown variable %s", v.Name)
		}
		if info.typ.IsRef() {
			if !info.typ.Mut {
				return c.errf(v.Pos, "cannot mutably borrow through shared reference %s", v.Name)
			}
			return nil
		}
		if !info.mut {
			return c.errf(v.Pos, "cannot mutably borrow immutable binding %s", v.Name)
		}
		return nil
	case *FieldAccess:
		return c.requireMutPath(v.X, sc)
	default:
		return c.errf(e.Position(), "cannot mutably borrow this expression")
	}
}

func (c *checker) checkCall(v *CallExpr, sc *scope) (Type, error) {
	if Builtins[v.Name] {
		return c.checkBuiltin(v, sc)
	}
	f, ok := c.prog.Funcs[v.Name]
	if !ok {
		return Type{}, c.errf(v.Pos, "unknown function %s", v.Name)
	}
	if len(v.Args) != len(f.Params) {
		return Type{}, c.errf(v.Pos, "%s takes %d arguments, got %d", v.Name, len(f.Params), len(v.Args))
	}
	for i, a := range v.Args {
		at, err := c.checkExpr(a, sc)
		if err != nil {
			return Type{}, err
		}
		want := f.Params[i].Type
		if !at.Equal(want) {
			if lit, isLit := a.(*VecLit); isLit && len(lit.Elems) == 0 && want.IsVec() {
				c.types[a] = want
				continue
			}
			return Type{}, c.errf(a.Position(), "%s argument %d: have %s, want %s", v.Name, i+1, at, want)
		}
	}
	return f.Ret, nil
}

func (c *checker) checkBuiltin(v *CallExpr, sc *scope) (Type, error) {
	argTypes := make([]Type, len(v.Args))
	for i, a := range v.Args {
		t, err := c.checkExpr(a, sc)
		if err != nil {
			return Type{}, err
		}
		argTypes[i] = t
	}
	switch v.Name {
	case "println":
		for i, t := range argTypes {
			if t.IsRef() {
				return Type{}, c.errf(v.Args[i].Position(), "println takes values, not references")
			}
		}
		return TypeUnit, nil
	case "assert":
		if len(v.Args) != 1 || !argTypes[0].Equal(TypeBool) {
			return Type{}, c.errf(v.Pos, "assert takes one bool argument")
		}
		return TypeUnit, nil
	case "vec_len":
		if len(v.Args) != 1 || !argTypes[0].IsRef() || !argTypes[0].Ref.IsVec() {
			return Type{}, c.errf(v.Pos, "vec_len takes &Vec<T>")
		}
		return TypeI64, nil
	case "vec_get":
		if len(v.Args) != 2 || !argTypes[0].IsRef() || !argTypes[0].Ref.IsVec() || !argTypes[1].Equal(TypeI64) {
			return Type{}, c.errf(v.Pos, "vec_get takes (&Vec<T>, i64)")
		}
		elem := *argTypes[0].Ref.Vec
		if !elem.IsCopy() {
			return Type{}, c.errf(v.Pos, "vec_get requires a copyable element type, have %s", elem)
		}
		return elem, nil
	case "vec_push":
		if len(v.Args) != 2 || !argTypes[0].IsRef() || !argTypes[0].Mut || !argTypes[0].Ref.IsVec() {
			return Type{}, c.errf(v.Pos, "vec_push takes (&mut Vec<T>, T)")
		}
		want := *argTypes[0].Ref.Vec
		if !argTypes[1].Equal(want) {
			if lit, isLit := v.Args[1].(*VecLit); isLit && len(lit.Elems) == 0 && want.IsVec() {
				c.types[v.Args[1]] = want
			} else {
				return Type{}, c.errf(v.Pos, "vec_push element: have %s, want %s", argTypes[1], want)
			}
		}
		return TypeUnit, nil
	case "declassify":
		if len(v.Args) != 2 {
			return Type{}, c.errf(v.Pos, "declassify takes (value, \"label\")")
		}
		if _, ok := v.Args[1].(*StrLit); !ok {
			return Type{}, c.errf(v.Pos, "declassify label must be a string literal")
		}
		if argTypes[0].IsRef() {
			return Type{}, c.errf(v.Pos, "declassify takes a value, not a reference")
		}
		return argTypes[0], nil
	case "assert_label_max":
		if len(v.Args) != 2 {
			return Type{}, c.errf(v.Pos, "assert_label_max takes (value, \"label\")")
		}
		if _, ok := v.Args[1].(*StrLit); !ok {
			return Type{}, c.errf(v.Pos, "assert_label_max label must be a string literal")
		}
		return TypeUnit, nil
	}
	return Type{}, c.errf(v.Pos, "unknown builtin %s", v.Name)
}

func (c *checker) checkMethodCall(v *MethodCall, sc *scope) (Type, error) {
	rt, err := c.checkExpr(v.Recv, sc)
	if err != nil {
		return Type{}, err
	}
	base := rt
	for base.IsRef() {
		base = *base.Ref
	}
	if _, ok := c.prog.Structs[base.Name]; !ok {
		return Type{}, c.errf(v.Pos, "%s is not a struct (no method %s)", rt, v.Method)
	}
	f, ok := c.prog.Funcs[QualifiedName(base.Name, v.Method)]
	if !ok {
		return Type{}, c.errf(v.Pos, "struct %s has no method %s", base.Name, v.Method)
	}
	if f.IsAssoc {
		return Type{}, c.errf(v.Pos, "%s is an associated function; call %s::%s(...)", v.Method, base.Name, v.Method)
	}
	selfT := f.Params[0].Type
	// Auto-borrow: a &mut self method needs a mutable receiver path.
	if selfT.IsRef() && selfT.Mut && !rt.IsRef() {
		if err := c.requireMutPath(v.Recv, sc); err != nil {
			return Type{}, err
		}
	}
	if rt.IsRef() && selfT.IsRef() && selfT.Mut && !rt.Mut {
		return Type{}, c.errf(v.Pos, "method %s requires &mut self but receiver is a shared reference", v.Method)
	}
	if !selfT.IsRef() && rt.IsRef() {
		return Type{}, c.errf(v.Pos, "method %s consumes self; cannot call through a reference", v.Method)
	}
	rest := f.Params[1:]
	if len(v.Args) != len(rest) {
		return Type{}, c.errf(v.Pos, "%s takes %d arguments, got %d", v.Method, len(rest), len(v.Args))
	}
	for i, a := range v.Args {
		at, err := c.checkExpr(a, sc)
		if err != nil {
			return Type{}, err
		}
		want := rest[i].Type
		if !at.Equal(want) {
			if lit, isLit := a.(*VecLit); isLit && len(lit.Elems) == 0 && want.IsVec() {
				c.types[a] = want
				continue
			}
			return Type{}, c.errf(a.Position(), "%s argument %d: have %s, want %s", v.Method, i+1, at, want)
		}
	}
	return f.Ret, nil
}
