package minirust

import (
	"errors"
	"strings"
	"testing"
)

func borrowCheckSrc(t *testing.T, src string) error {
	t.Helper()
	c, err := mustCheck(src)
	if err != nil {
		t.Fatalf("front end rejected fixture: %v", err)
	}
	return BorrowCheck(c)
}

func expectBorrowError(t *testing.T, src, want string) *BorrowError {
	t.Helper()
	err := borrowCheckSrc(t, src)
	if err == nil {
		t.Fatalf("BorrowCheck succeeded, want error containing %q", want)
	}
	var be *BorrowError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T (%v)", err, err)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("err = %v, want substring %q", err, want)
	}
	return be
}

func TestPaperListingLine17RejectedByBorrowChecker(t *testing.T) {
	// The paper's aliasing exploit: "line 17 is rejected by the compiler,
	// as it attempts to access the nonsec variable, whose ownership was
	// transferred to the append method in line 14."
	be := expectBorrowError(t, PaperBufferProgram(false, true), "use of moved value nonsec")
	if be.MovedAt == (Pos{}) {
		t.Fatal("error does not point at the move site")
	}
	if be.MovedAt.Line >= be.Pos.Line {
		t.Fatalf("move site %v should precede use site %v", be.MovedAt, be.Pos)
	}
}

func TestPaperListingWithoutExploitPassesBorrowCheck(t *testing.T) {
	// Lines 1-16 are ownership-correct (the leak at 16 is an IFC error,
	// not an ownership error).
	if err := borrowCheckSrc(t, PaperBufferProgram(true, false)); err != nil {
		t.Fatal(err)
	}
}

func TestPaperIntroExample(t *testing.T) {
	// The §2 take/borrow example: take(v1) consumes; println(v1) errors.
	expectBorrowError(t, `
fn take(v: Vec<i64>) { }
fn borrow(v: &Vec<i64>) { }
fn main() {
    let v1 = vec![1, 2, 3];
    let v2 = vec![1, 2, 3];
    take(v1);
    println(v1);
}
`, "use of moved value v1")
	// And the borrow version is fine.
	if err := borrowCheckSrc(t, `
fn borrow(v: &Vec<i64>) { }
fn main() {
    let v2 = vec![1, 2, 3];
    borrow(&v2);
    println(v2);
}
`); err != nil {
		t.Fatal(err)
	}
}

func TestLetMoves(t *testing.T) {
	expectBorrowError(t, `
fn main() {
    let a = vec![1];
    let b = a;
    println(a);
}
`, "use of moved value a")
}

func TestCopyTypesDontMove(t *testing.T) {
	if err := borrowCheckSrc(t, `
fn f(x: i64) { }
fn main() {
    let a = 1;
    let b = a;
    f(a);
    f(a);
    println(a, b);
}
`); err != nil {
		t.Fatal(err)
	}
}

func TestReassignmentRevives(t *testing.T) {
	if err := borrowCheckSrc(t, `
fn take(v: Vec<i64>) { }
fn main() {
    let mut a = vec![1];
    take(a);
    a = vec![2];
    take(a);
}
`); err != nil {
		t.Fatal(err)
	}
}

func TestFieldAssignAfterMoveRejected(t *testing.T) {
	expectBorrowError(t, `
struct S { v: Vec<i64> }
fn take(s: S) { }
fn main() {
    let mut s = S { v: vec![1] };
    take(s);
    s.v = vec![2];
}
`, "use of moved value s")
}

func TestConditionalMove(t *testing.T) {
	expectBorrowError(t, `
fn take(v: Vec<i64>) { }
fn main(){
    let c = true;
    let a = vec![1];
    if c {
        take(a);
    }
    println(a);
}
`, "possibly-moved value a")
	// Moved in both branches: definitively moved.
	expectBorrowError(t, `
fn take(v: Vec<i64>) { }
fn main(){
    let c = true;
    let a = vec![1];
    if c { take(a); } else { take(a); }
    println(a);
}
`, "use of moved value a")
	// Moved then revived in both branches: fine.
	if err := borrowCheckSrc(t, `
fn take(v: Vec<i64>) { }
fn main(){
    let c = true;
    let mut a = vec![1];
    if c { take(a); a = vec![2]; } else { take(a); a = vec![3]; }
    println(a);
}
`); err != nil {
		t.Fatal(err)
	}
}

func TestMoveInLoopRejected(t *testing.T) {
	be := expectBorrowError(t, `
fn take(v: Vec<i64>) { }
fn main(){
    let a = vec![1];
    let mut i = 0;
    while i < 3 {
        take(a);
        i = i + 1;
    }
}
`, "possibly-moved value a")
	if !strings.Contains(be.Msg, "previous loop iteration") {
		t.Fatalf("msg = %q, want loop-iteration hint", be.Msg)
	}
	// Reviving before the next iteration makes it legal.
	if err := borrowCheckSrc(t, `
fn take(v: Vec<i64>) { }
fn main(){
    let mut a = vec![1];
    let mut i = 0;
    while i < 3 {
        take(a);
        a = vec![2];
        i = i + 1;
    }
}
`); err != nil {
		t.Fatal(err)
	}
}

func TestMoveAndBorrowSameStatement(t *testing.T) {
	// Move first, borrow second: the move already killed the binding.
	expectBorrowError(t, `
fn f(v: Vec<i64>, r: &Vec<i64>) { }
fn main() {
    let a = vec![1];
    f(a, &a);
}
`, "use of moved value a")
	// Borrow first, move second: the intra-statement conflict fires.
	expectBorrowError(t, `
fn f(r: &Vec<i64>, v: Vec<i64>) { }
fn main() {
    let a = vec![1];
    f(&a, a);
}
`, "also borrowed in this statement")
}

func TestDoubleMoveSameStatement(t *testing.T) {
	expectBorrowError(t, `
fn f(a: Vec<i64>, b: Vec<i64>) { }
fn main() {
    let a = vec![1];
    f(a, a);
}
`, "use of moved value a")
}

func TestMoveOutOfBorrowedContent(t *testing.T) {
	expectBorrowError(t, `
struct S { v: Vec<i64> }
fn take(v: Vec<i64>) { }
fn steal(s: &mut S) {
    take(s.v);
}
fn main() { }
`, "cannot move s.v out of borrowed content")
}

func TestMoveFieldOutOfOwnedAllowedOnce(t *testing.T) {
	// Moving a field out of an owned struct is a partial move; the whole
	// variable is then unusable (conservative whole-var model).
	expectBorrowError(t, `
struct S { v: Vec<i64> }
fn take(v: Vec<i64>) { }
fn main() {
    let s = S { v: vec![1] };
    take(s.v);
    println(s.v);
}
`, "use of moved value s.v")
}

func TestByValueSelfConsumesReceiver(t *testing.T) {
	expectBorrowError(t, `
struct S { v: Vec<i64> }
impl S {
    fn consume(self) { }
}
fn main() {
    let s = S { v: vec![1] };
    s.consume();
    println(s.v);
}
`, "use of moved value s")
}

func TestBorrowingSelfDoesNotConsume(t *testing.T) {
	if err := borrowCheckSrc(t, `
struct S { v: Vec<i64> }
impl S {
    fn peek(&self) -> i64 { return vec_len(&self.v); }
    fn grow(&mut self) { vec_push(&mut self.v, 1); }
}
fn main() {
    let mut s = S { v: vec![1] };
    let a = s.peek();
    s.grow();
    let b = s.peek();
    println(a, b, s.v);
}
`); err != nil {
		t.Fatal(err)
	}
}

func TestReturnMoves(t *testing.T) {
	expectBorrowError(t, `
fn f() -> Vec<i64> {
    let v = vec![1];
    let w = v;
    return v;
}
fn main() { }
`, "use of moved value v")
}

func TestMovedValueInWhileCondition(t *testing.T) {
	expectBorrowError(t, `
fn take(v: Vec<i64>) -> i64 { return 0; }
fn main() {
    let v = vec![1];
    while take(v) < 3 {
    }
}
`, "use of moved value v")
}

func TestStructLitAndVecLitMove(t *testing.T) {
	expectBorrowError(t, `
struct S { v: Vec<i64> }
fn main() {
    let a = vec![1];
    let s = S { v: a };
    println(a);
}
`, "use of moved value a")
	expectBorrowError(t, `
fn main() {
    let a = vec![1];
    let vv = vec![a];
    println(a);
}
`, "use of moved value a")
}

func TestPrintlnDoesNotConsume(t *testing.T) {
	if err := borrowCheckSrc(t, `
fn main() {
    let a = vec![1];
    println(a);
    println(a);
}
`); err != nil {
		t.Fatal(err)
	}
}

func TestDeclassifyConsumes(t *testing.T) {
	expectBorrowError(t, `
fn main() {
    let a = vec![1];
    let b = declassify(a, "public");
    println(a);
}
`, "use of moved value a")
}

func TestErrorMentionsMoveSite(t *testing.T) {
	be := expectBorrowError(t, `
fn take(v: Vec<i64>) { }
fn main() {
    let a = vec![1];
    take(a);
    println(a);
}
`, "use of moved value a")
	if be.MovedAt.Line != 5 {
		t.Fatalf("MovedAt = %v, want line 5", be.MovedAt)
	}
	if be.Pos.Line != 6 {
		t.Fatalf("Pos = %v, want line 6", be.Pos)
	}
}
