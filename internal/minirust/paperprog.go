package minirust

// PaperBufferProgram renders the paper's §4 listing in minirust surface
// syntax: the Buffer struct whose append steals the first vector it
// receives (the aliasing hazard of paper lines 6-7), the labeled secret
// and non-secret vectors, and — per the flags — the direct leak (paper
// line 16) and the alias-laundering exploit (paper line 17).
//
// It lives in the library (not the test files) because the verifier CLI,
// the examples, and three packages' tests all analyze it.
func PaperBufferProgram(withDirectLeak, withAliasExploit bool) string {
	src := `
labels public < secret;

struct Buffer { data: Vec<i64> }

impl Buffer {
    fn new() -> Buffer {
        return Buffer { data: vec![] };
    }
    // Uses the first vector of values received from the client to store
    // the data internally (paper line 6), and later appends new data to
    // it (line 7).
    fn append(&mut self, v: Vec<i64>) {
        if vec_len(&self.data) == 0 {
            self.data = v;
        } else {
            let n = vec_len(&v);
            let mut i = 0;
            while i < n {
                vec_push(&mut self.data, vec_get(&v, i));
                i = i + 1;
            }
        }
    }
}

fn main() {
    let mut buf = Buffer::new();
    #[label(public)]
    let nonsec = vec![1, 2, 3];
    #[label(secret)]
    let sec = vec![4, 5, 6];
    buf.append(nonsec);
    buf.append(sec);        // buf now contains secret data
`
	if withDirectLeak {
		src += "    println(buf.data);      // paper line 16: leaks secret data\n"
	}
	if withAliasExploit {
		src += "    println(nonsec);        // paper line 17: aliasing exploit\n"
	}
	src += "}\n"
	return src
}
