package minirust

import (
	"strings"
	"testing"
)

// FuzzParse asserts the whole front end is total: arbitrary input may be
// rejected with an error but must never panic or hang. Run with
// `go test -fuzz=FuzzParse ./internal/minirust`; in normal test runs the
// seed corpus below executes.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"fn main() { }",
		PaperBufferProgram(true, true),
		"labels a < b < c; fn main() { }",
		`struct S { v: Vec<i64> } impl S { fn m(&mut self) { } } fn main() { }`,
		`fn main() { let x = 1 + 2 * (3 - 4) / 5 % 6; }`,
		`fn main() { let s = "str\n\t\"\\"; }`,
		`fn main() { #[label(secret)] let x = vec![1]; println(x); }`,
		`fn f(a: i64, b: &mut Vec<bool>) -> Vec<str> { return vec![]; }`,
		"fn main() { // comment\n }",
		"fn main() { if a { } else if b { } else { } while c { } }",
		"\xff\xfe invalid utf8",
		"fn main() { x.y.z.w(1,2,3).q = 5; }",
		strings.Repeat("fn f() { } ", 50) + "fn main() { }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything that parses must also survive the checker pipeline
		// without panicking.
		checked, err := Check(prog)
		if err != nil {
			return
		}
		_ = BorrowCheck(checked)
	})
}

// FuzzInterp runs parsed-and-checked random programs under a tight step
// budget: the interpreter must always return (value or error), never
// panic or loop forever.
func FuzzInterp(f *testing.F) {
	f.Add("fn main() { let mut i = 0; while i < 10 { i = i + 1; } println(i); }")
	f.Add("fn main() { let x = 1 / 1; let y = 1 % 1; assert(true); }")
	f.Add(PaperBufferProgram(true, false))
	f.Add("fn r(n: i64) -> i64 { if n < 1 { return 0; } return r(n - 1); } fn main() { println(r(9)); }")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		checked, err := Check(prog)
		if err != nil {
			return
		}
		if err := BorrowCheck(checked); err != nil {
			return
		}
		in := NewInterp(checked, WithMaxSteps(20_000))
		_ = in.Run() // must not panic
	})
}
