package minirust

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// chainMonitor builds a Monitor over an ordered chain of labels.
func chainMonitor(levels ...string) *Monitor {
	rank := make(map[string]int, len(levels))
	for i, l := range levels {
		rank[l] = i
	}
	return &Monitor{
		Bottom: levels[0],
		Join: func(a, b string) string {
			if rank[a] >= rank[b] {
				return a
			}
			return b
		},
		Le: func(a, b string) bool { return rank[a] <= rank[b] },
	}
}

func runSrc(t *testing.T, src string, opts ...InterpOption) (string, error) {
	t.Helper()
	c, err := mustCheck(src)
	if err != nil {
		t.Fatalf("front end rejected fixture: %v", err)
	}
	if err := BorrowCheck(c); err != nil {
		t.Fatalf("borrow check rejected fixture: %v", err)
	}
	var out bytes.Buffer
	opts = append([]InterpOption{WithOutput(&out)}, opts...)
	err = NewInterp(c, opts...).Run()
	return out.String(), err
}

func TestInterpHelloArithmetic(t *testing.T) {
	out, err := runSrc(t, `
fn main() {
    let x = 2 + 3 * 4;
    let y = (2 + 3) * 4;
    println(x, y, x < y, x == 14, 7 % 3, -x);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "14 20 true true 1 -14" {
		t.Fatalf("out = %q", out)
	}
}

func TestInterpVecOps(t *testing.T) {
	out, err := runSrc(t, `
fn main() {
    let mut v = vec![10, 20];
    vec_push(&mut v, 30);
    let n = vec_len(&v);
    let mid = vec_get(&v, 1);
    println(v, n, mid);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "[10, 20, 30] 3 20" {
		t.Fatalf("out = %q", out)
	}
}

func TestInterpControlFlow(t *testing.T) {
	out, err := runSrc(t, `
fn fib(n: i64) -> i64 {
    if n < 2 { return n; }
    return fib(n - 1) + fib(n - 2);
}
fn main() {
    let mut i = 0;
    let mut acc = vec![];
    while i < 8 {
        vec_push(&mut acc, fib(i));
        i = i + 1;
    }
    println(acc);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "[0, 1, 1, 2, 3, 5, 8, 13]" {
		t.Fatalf("out = %q", out)
	}
}

func TestInterpMethodsMutateThroughBorrow(t *testing.T) {
	out, err := runSrc(t, `
struct Counter { n: i64 }
impl Counter {
    fn new() -> Counter { return Counter { n: 0 }; }
    fn bump(&mut self) { self.n = self.n + 1; }
    fn get(&self) -> i64 { return self.n; }
}
fn main() {
    let mut c = Counter::new();
    c.bump();
    c.bump();
    c.bump();
    println(c.get());
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "3" {
		t.Fatalf("out = %q", out)
	}
}

func TestInterpPaperBufferSemantics(t *testing.T) {
	// Without the monitor, the paper program runs and shows the buffer
	// holding both vectors' contents (append semantics are real).
	out, err := runSrc(t, PaperBufferProgram(true, false))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "[1, 2, 3, 4, 5, 6]" {
		t.Fatalf("out = %q", out)
	}
}

func TestInterpMonitorCatchesPaperLeak(t *testing.T) {
	// With the dynamic monitor, paper line 16 raises a leak at run time:
	// the ground truth the static analysis must predict.
	_, err := runSrc(t, PaperBufferProgram(true, false), WithMonitor(chainMonitor("public", "secret")))
	var le *LeakError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want LeakError", err)
	}
	if le.Label != "secret" || le.Bound != "public" {
		t.Fatalf("leak = %+v", le)
	}
}

func TestInterpMonitorCleanProgramPasses(t *testing.T) {
	out, err := runSrc(t, `
labels public < secret;
fn main() {
    #[label(secret)]
    let sec = vec![4, 5, 6];
    #[label(public)]
    let pub1 = vec![1];
    println(pub1);
    assert_label_max(sec, "secret");
}
`, WithMonitor(chainMonitor("public", "secret")))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "[1]" {
		t.Fatalf("out = %q", out)
	}
}

func TestInterpImplicitFlowCaughtDynamically(t *testing.T) {
	// pc-label tracking: writing inside a secret branch taints the write.
	_, err := runSrc(t, `
labels public < secret;
fn main() {
    #[label(secret)]
    let sec = 1;
    let mut leak = 0;
    if sec == 1 {
        leak = 1;
    }
    println(leak);
}
`, WithMonitor(chainMonitor("public", "secret")))
	var le *LeakError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want LeakError from implicit flow", err)
	}
}

func TestInterpDeclassifyLowers(t *testing.T) {
	out, err := runSrc(t, `
labels public < secret;
fn main() {
    #[label(secret)]
    let sec = 41;
    let pub1 = declassify(sec + 1, "public");
    println(pub1);
}
`, WithMonitor(chainMonitor("public", "secret")))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "42" {
		t.Fatalf("out = %q", out)
	}
}

func TestInterpAssertFailure(t *testing.T) {
	_, err := runSrc(t, `fn main() { assert(1 == 2); }`)
	var re *RuntimeError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "assertion failed") {
		t.Fatalf("err = %v", err)
	}
}

func TestInterpDivisionByZero(t *testing.T) {
	for _, src := range []string{
		`fn main() { let x = 1 / 0; }`,
		`fn main() { let x = 1 % 0; }`,
	} {
		_, err := runSrc(t, src)
		var re *RuntimeError
		if !errors.As(err, &re) {
			t.Fatalf("err = %v", err)
		}
	}
}

func TestInterpIndexOutOfBounds(t *testing.T) {
	_, err := runSrc(t, `
fn main() {
    let v = vec![1];
    let x = vec_get(&v, 5);
}
`)
	var re *RuntimeError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "out of bounds") {
		t.Fatalf("err = %v", err)
	}
}

func TestInterpStepBudget(t *testing.T) {
	_, err := runSrc(t, `
fn main() {
    while true { }
}
`, WithMaxSteps(1000))
	var re *RuntimeError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "step budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestInterpShortCircuit(t *testing.T) {
	// 1/0 on the unevaluated side must not trip.
	out, err := runSrc(t, `
fn boom() -> bool { assert(false); return true; }
fn main() {
    let a = false && boom();
    let b = true || boom();
    println(a, b);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "false true" {
		t.Fatalf("out = %q", out)
	}
}

func TestInterpStructFormat(t *testing.T) {
	out, err := runSrc(t, `
struct P { x: i64 }
fn main() {
    let p = P { x: 3 };
    println(p);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "P { x: 3 }" {
		t.Fatalf("out = %q", out)
	}
}

func TestInterpStringOutput(t *testing.T) {
	out, err := runSrc(t, `
fn main() {
    println("hello", 1, true);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != `"hello" 1 true` {
		t.Fatalf("out = %q", out)
	}
}

func TestInterpMoveSemanticEffect(t *testing.T) {
	// Stealing the first vector: after append(nonsec), the buffer's data
	// IS the nonsec vector (no copy). Mutating the buffer mutates the
	// stolen storage — observable via buf.data.
	out, err := runSrc(t, `
struct B { data: Vec<i64> }
impl B {
    fn set(&mut self, v: Vec<i64>) { self.data = v; }
    fn grow(&mut self) { vec_push(&mut self.data, 99); }
}
fn main() {
    let mut b = B { data: vec![] };
    let v = vec![1];
    b.set(v);
    b.grow();
    println(b.data);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "[1, 99]" {
		t.Fatalf("out = %q", out)
	}
}

func TestValueFormatKinds(t *testing.T) {
	cases := map[string]Value{
		"()":      {Kind: VUnit},
		"7":       {Kind: VInt, I: 7},
		"false":   {Kind: VBool},
		`"x"`:     {Kind: VStr, S: "x"},
		"[1, 2]":  {Kind: VVec, Vec: &VecVal{Elems: []Value{{Kind: VInt, I: 1}, {Kind: VInt, I: 2}}}},
		"<moved>": {Kind: VMoved},
	}
	for want, v := range cases {
		if got := v.Format(); got != want {
			t.Errorf("Format = %q, want %q", got, want)
		}
	}
	ref := Value{Kind: VRef, Ref: &Value{Kind: VInt, I: 1}}
	if ref.Format() != "&1" {
		t.Errorf("ref format = %q", ref.Format())
	}
}
