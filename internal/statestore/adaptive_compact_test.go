package statestore

import (
	"fmt"
	"testing"
)

// persistGenerations writes gens whole-state generations (one epoch per
// domain per generation, payloadBytes each) and reports the compaction
// count afterwards.
func persistGenerations(t *testing.T, s *Store, domains, gens, payloadBytes int) uint64 {
	t.Helper()
	payload := make([]byte, payloadBytes)
	seq := uint64(0)
	for g := 0; g < gens; g++ {
		seq++
		for d := 0; d < domains; d++ {
			name := fmt.Sprintf("worker-%d", d)
			if err := s.PersistEpoch(name, seq, payload); err != nil {
				t.Fatalf("PersistEpoch(%s, %d): %v", name, seq, err)
			}
		}
	}
	return s.StatsSnapshot().Compactions
}

// TestAdaptiveCompactionCadence pins the fix for the fixed 8 MiB WAL
// compaction trigger: with CompactAfter unset (adaptive), the cadence is
// a constant number of whole-state generations regardless of how many
// domains share the store — a 32-domain run must not compact 32× as
// often (in generations) as a single-domain run, and a single small
// domain must not wait multi-megabytes of WAL for its first compaction.
func TestAdaptiveCompactionCadence(t *testing.T) {
	const (
		gens    = 200
		payload = 4096
	)
	cadence := func(domains int) float64 {
		s := openT(t, t.TempDir(), Config{Fsync: FsyncNone})
		c := persistGenerations(t, s, domains, gens, payload)
		if c == 0 {
			t.Fatalf("%d domains: no compaction in %d generations", domains, gens)
		}
		return float64(gens) / float64(c)
	}
	one := cadence(1)
	many := cadence(32)

	// Both runs should compact about every autoCompactGenerations
	// whole-state generations (the clamp floor nudges the 1-domain run a
	// little later; overheads nudge both a little earlier).
	for _, tc := range []struct {
		domains int
		got     float64
	}{{1, one}, {32, many}} {
		if tc.got < autoCompactGenerations/2 || tc.got > autoCompactGenerations*2 {
			t.Errorf("%d domains: compaction every %.1f generations, want ~%d",
				tc.domains, tc.got, autoCompactGenerations)
		}
	}
	// And the cadences must agree with each other in generations — the
	// property the fixed byte threshold broke by a factor of the domain
	// count.
	if ratio := many / one; ratio < 0.5 || ratio > 2 {
		t.Errorf("cadence skew 32-domain/1-domain = %.2f, want ~1", ratio)
	}
}

// TestAdaptiveCompactionSmallDomain pins the other half of the fix: a
// single domain writing small epochs used to sit under the fixed 8 MiB
// trigger essentially forever (hundreds of thousands of epochs of WAL
// replay at reopen). The same workload under an explicit 8 MiB threshold
// must show zero compactions where adaptive mode shows several.
func TestAdaptiveCompactionSmallDomain(t *testing.T) {
	const (
		gens    = 200
		payload = 4096
	)
	fixed := openT(t, t.TempDir(), Config{Fsync: FsyncNone, CompactAfter: 8 << 20})
	if c := persistGenerations(t, fixed, 1, gens, payload); c != 0 {
		t.Fatalf("fixed 8 MiB threshold compacted %d times in %d small epochs", c, gens)
	}
	auto := openT(t, t.TempDir(), Config{Fsync: FsyncNone})
	if c := persistGenerations(t, auto, 1, gens, payload); c < 2 {
		t.Fatalf("adaptive threshold compacted %d times in %d small epochs, want >= 2", c, gens)
	}
}
