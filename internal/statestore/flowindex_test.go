package statestore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/packet"
	"repro/internal/session"
)

func rec(h uint64, backend uint32, pkts uint64) session.SpillRecord {
	return session.SpillRecord{
		Hash: h,
		Tuple: packet.FiveTuple{
			SrcIP:   packet.IPv4(h >> 16),
			DstIP:   packet.IPv4(backend),
			SrcPort: uint16(h),
			DstPort: 80,
			Proto:   17,
		},
		Backend: packet.IPv4(backend),
		Packets: pkts,
		Bytes:   pkts * 100,
	}
}

func TestFlowEntryRoundTrip(t *testing.T) {
	want := rec(0xdeadbeefcafe, 0x0a000001, 7)
	buf := encodeFlowEntry(nil, want)
	if len(buf) != flowEntrySize {
		t.Fatalf("entry size %d, want %d", len(buf), flowEntrySize)
	}
	if got := decodeFlowEntry(buf); got != want {
		t.Fatalf("round trip: %+v != %+v", got, want)
	}
}

func TestFlowIndexPutGet(t *testing.T) {
	s := openT(t, t.TempDir(), Config{})
	fi, err := s.FlowIndex("worker-0")
	if err != nil {
		t.Fatal(err)
	}
	var batch []session.SpillRecord
	for i := uint64(0); i < 100; i++ {
		batch = append(batch, rec(i*977, uint32(i%3), i))
	}
	if err := fi.SpillFlows(batch); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		got, ok, err := fi.LookupFlow(i * 977)
		if err != nil || !ok {
			t.Fatalf("lookup %d: ok=%v err=%v", i, ok, err)
		}
		if got != batch[i] {
			t.Fatalf("lookup %d: %+v != %+v", i, got, batch[i])
		}
	}
	if _, ok, _ := fi.LookupFlow(123456789); ok {
		t.Fatal("phantom flow found")
	}
	n, err := fi.FlowCount()
	if err != nil || n != 100 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

func TestFlowIndexCompactionAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{FlowCompactAfter: 32})
	fi, err := s.FlowIndex("w")
	if err != nil {
		t.Fatal(err)
	}
	// Three generations of puts, overlapping hashes: later packets win.
	for gen := uint64(1); gen <= 3; gen++ {
		var batch []session.SpillRecord
		for i := uint64(0); i < 50; i++ {
			batch = append(batch, rec(i, uint32(1), gen*1000+i))
		}
		if err := fi.SpillFlows(batch); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.StatsSnapshot(); st.Compactions == 0 {
		t.Fatal("flow compaction never ran")
	}
	s.Close()

	s2 := openT(t, dir, Config{})
	fi2, err := s2.FlowIndex("w")
	if err != nil {
		t.Fatal(err)
	}
	n, err := fi2.FlowCount()
	if err != nil || n != 50 {
		t.Fatalf("count after reopen = %d, %v; want 50", n, err)
	}
	for i := uint64(0); i < 50; i++ {
		got, ok, err := fi2.LookupFlow(i)
		if err != nil || !ok {
			t.Fatalf("lookup %d after reopen: ok=%v err=%v", i, ok, err)
		}
		if got.Packets != 3000+i {
			t.Fatalf("flow %d: packets=%d, want latest generation %d", i, got.Packets, 3000+i)
		}
	}
}

func TestFlowIndexTornLogTail(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{FlowCompactAfter: -1})
	fi, err := s.FlowIndex("w")
	if err != nil {
		t.Fatal(err)
	}
	if err := fi.SpillFlows([]session.SpillRecord{rec(1, 9, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := fi.SpillFlows([]session.SpillRecord{rec(2, 9, 2)}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, "w.flog")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Config{})
	fi2, err := s2.FlowIndex("w")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := fi2.LookupFlow(1); !ok {
		t.Fatal("un-torn record lost")
	}
	if _, ok, _ := fi2.LookupFlow(2); ok {
		t.Fatal("torn record recovered")
	}
}

func TestFlowIndexNameValidation(t *testing.T) {
	s := openT(t, t.TempDir(), Config{})
	for _, bad := range []string{"", "a/b", `a\b`} {
		if _, err := s.FlowIndex(bad); err == nil {
			t.Fatalf("name %q accepted", bad)
		}
	}
	a, err := s.FlowIndex("worker-0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.FlowIndex("worker-0")
	if err != nil || a != b {
		t.Fatal("FlowIndex not cached per name")
	}
}

func TestFlowIndexManyDomains(t *testing.T) {
	s := openT(t, t.TempDir(), Config{})
	for w := 0; w < 4; w++ {
		fi, err := s.FlowIndex(fmt.Sprintf("worker-%d", w))
		if err != nil {
			t.Fatal(err)
		}
		if err := fi.SpillFlows([]session.SpillRecord{rec(uint64(w), uint32(w), 1)}); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < 4; w++ {
		fi, _ := s.FlowIndex(fmt.Sprintf("worker-%d", w))
		if n, _ := fi.FlowCount(); n != 1 {
			t.Fatalf("worker-%d count = %d", w, n)
		}
		if _, ok, _ := fi.LookupFlow(uint64((w + 1) % 4)); ok && w != (w+1)%4 {
			t.Fatalf("worker-%d sees another domain's flow", w)
		}
	}
}
