package statestore

import (
	"bytes"
	"testing"
)

func frames(payloads ...string) []byte {
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, []byte(p))
	}
	return buf
}

func TestSplitFramesRoundTrip(t *testing.T) {
	data := frames("alpha", "", "bravo-charlie")
	recs, n := SplitFrames(data)
	if n != len(data) {
		t.Fatalf("valid prefix = %d, want %d", n, len(data))
	}
	want := []string{"alpha", "", "bravo-charlie"}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if string(rec) != want[i] {
			t.Fatalf("record %d = %q, want %q", i, rec, want[i])
		}
	}
}

func TestSplitFramesTornTail(t *testing.T) {
	full := frames("alpha", "bravo")
	first := frames("alpha")
	cases := []struct {
		name string
		data []byte
		want int // surviving records
	}{
		{"empty", nil, 0},
		{"mid length prefix", full[:len(first)+2], 1},
		{"mid crc", full[:len(first)+6], 1},
		{"mid payload", full[:len(full)-2], 1},
		{"header only", full[:len(first)+8], 1},
		{"all torn", full[:3], 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, n := SplitFrames(tc.data)
			if len(recs) != tc.want {
				t.Fatalf("got %d records, want %d", len(recs), tc.want)
			}
			// The valid prefix re-encodes to exactly data[:n].
			var re []byte
			for _, r := range recs {
				re = AppendFrame(re, r)
			}
			if !bytes.Equal(re, tc.data[:n]) {
				t.Fatalf("re-encoded prefix differs: %x vs %x", re, tc.data[:n])
			}
		})
	}
}

func TestSplitFramesCorruption(t *testing.T) {
	full := frames("alpha", "bravo")
	first := frames("alpha")

	// Bit-flip inside the second payload: CRC catches it, record one
	// survives.
	flipped := append([]byte(nil), full...)
	flipped[len(first)+8+1] ^= 0x40
	recs, n := SplitFrames(flipped)
	if len(recs) != 1 || n != len(first) {
		t.Fatalf("payload flip: %d records, prefix %d; want 1, %d", len(recs), n, len(first))
	}

	// Bit-flip in the second length prefix making it absurd: same result.
	flipped = append([]byte(nil), full...)
	flipped[len(first)+3] ^= 0x80 // high byte of the u32 length
	recs, n = SplitFrames(flipped)
	if len(recs) != 1 || n != len(first) {
		t.Fatalf("length flip: %d records, prefix %d; want 1, %d", len(recs), n, len(first))
	}

	// Flip in the *first* record: nothing survives.
	flipped = append([]byte(nil), full...)
	flipped[9] ^= 0x01
	recs, n = SplitFrames(flipped)
	if len(recs) != 0 || n != 0 {
		t.Fatalf("first-record flip: %d records, prefix %d; want 0, 0", len(recs), n)
	}
}

func TestSplitFramesOversizedLength(t *testing.T) {
	var buf []byte
	buf = append(buf, 0xff, 0xff, 0xff, 0x7f) // length ≫ MaxFrame
	buf = append(buf, 0, 0, 0, 0)
	buf = append(buf, bytes.Repeat([]byte{0xab}, 64)...)
	recs, n := SplitFrames(buf)
	if len(recs) != 0 || n != 0 {
		t.Fatalf("oversized length: %d records, prefix %d; want 0, 0", len(recs), n)
	}
}
