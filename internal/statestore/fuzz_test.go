package statestore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary byte streams through both recovery
// layers: the frame splitter (longest-valid-prefix contract) and a full
// Store.Open over the bytes as a WAL (replay + torn-tail truncation +
// epoch decoding must never panic, and a reopened store must agree with
// itself). Seeds cover the torn-write taxonomy: truncation mid-length-
// prefix, mid-CRC, mid-payload, and bit flips in each region.
func FuzzWALReplay(f *testing.F) {
	twoEpochs := func() []byte {
		var buf []byte
		buf = AppendFrame(buf, encodeEpoch("worker-0", 1, 100, []byte("alpha-token")))
		buf = AppendFrame(buf, encodeEpoch("worker-0", 2, 200, []byte("bravo-token")))
		return buf
	}
	full := twoEpochs()
	first := AppendFrame(nil, encodeEpoch("worker-0", 1, 100, []byte("alpha-token")))
	f.Add([]byte{})
	f.Add(full)
	f.Add(full[:len(first)+2])          // torn mid-length-prefix
	f.Add(full[:len(first)+6])          // torn mid-CRC
	f.Add(full[:len(full)-3])           // torn mid-payload
	flip := append([]byte(nil), full...)
	flip[len(first)+10] ^= 0x40 // bit flip in second payload
	f.Add(flip)
	flip2 := append([]byte(nil), full...)
	flip2[2] ^= 0x80 // bit flip in first length prefix
	f.Add(flip2)
	f.Add(AppendFrame(nil, []byte("not an epoch record"))) // CRC-clean, undecodable

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, n := SplitFrames(data)
		if n < 0 || n > len(data) {
			t.Fatalf("valid prefix %d out of range [0,%d]", n, len(data))
		}
		// Longest-valid-prefix exactness: the records re-encode to
		// data[:n], and re-splitting the prefix is a fixed point.
		var re []byte
		for _, r := range recs {
			re = AppendFrame(re, r)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encoded prefix differs from data[:%d]", n)
		}
		recs2, n2 := SplitFrames(data[:n])
		if n2 != n || len(recs2) != len(recs) {
			t.Fatalf("re-split: %d records/%d bytes, want %d/%d", len(recs2), n2, len(recs), n)
		}

		// Full recovery path: the bytes as a store's WAL. Open must not
		// panic, must truncate the torn tail, and a second Open must see
		// identical epochs.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Config{Dir: dir, Fsync: FsyncNone})
		if err != nil {
			t.Fatalf("Open on fuzzed WAL: %v", err)
		}
		names := s.Names()
		epochs := make(map[string]uint64, len(names))
		for _, name := range names {
			_, seq, ok, err := s.LastEpoch(name)
			if err != nil || !ok {
				t.Fatalf("LastEpoch(%q): ok=%v err=%v", name, ok, err)
			}
			epochs[name] = seq
		}
		s.Close()
		s2, err := Open(Config{Dir: dir, Fsync: FsyncNone})
		if err != nil {
			t.Fatalf("re-Open: %v", err)
		}
		defer s2.Close()
		for name, seq := range epochs {
			_, seq2, ok, err := s2.LastEpoch(name)
			if err != nil || !ok || seq2 != seq {
				t.Fatalf("reopen lost %q: seq %d→%d ok=%v err=%v", name, seq, seq2, ok, err)
			}
		}
		if len(s2.Names()) != len(names) {
			t.Fatalf("reopen domain count %d != %d", len(s2.Names()), len(names))
		}
	})
}
