package statestore

// flowindex.go is the on-disk half of the session table's cache story:
// a per-domain flow index holding every flow ever evicted from RAM.
// Writes append framed batches to <name>.flog (same framing and
// torn-tail recovery as the epoch WAL); compaction merges the log into
// <name>.fidx, a flat array of fixed-size entries sorted by flow hash
// that lookups binary-search with ReadAt — no resident copy of the full
// flow set. Recent puts live in a RAM overlay until the next compaction,
// so reads are overlay-then-index.

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/packet"
	"repro/internal/session"
)

// flowEntrySize is the fixed on-disk entry: u64 hash, 13-byte tuple
// (src, dst, sport, dport, proto), u32 backend, u64 packets, u64 bytes.
const flowEntrySize = 8 + 13 + 4 + 8 + 8

func encodeFlowEntry(buf []byte, r session.SpillRecord) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, r.Hash)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Tuple.SrcIP))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Tuple.DstIP))
	buf = binary.LittleEndian.AppendUint16(buf, r.Tuple.SrcPort)
	buf = binary.LittleEndian.AppendUint16(buf, r.Tuple.DstPort)
	buf = append(buf, r.Tuple.Proto)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Backend))
	buf = binary.LittleEndian.AppendUint64(buf, r.Packets)
	buf = binary.LittleEndian.AppendUint64(buf, r.Bytes)
	return buf
}

func decodeFlowEntry(b []byte) session.SpillRecord {
	return session.SpillRecord{
		Hash: binary.LittleEndian.Uint64(b),
		Tuple: packet.FiveTuple{
			SrcIP:   packet.IPv4(binary.LittleEndian.Uint32(b[8:])),
			DstIP:   packet.IPv4(binary.LittleEndian.Uint32(b[12:])),
			SrcPort: binary.LittleEndian.Uint16(b[16:]),
			DstPort: binary.LittleEndian.Uint16(b[18:]),
			Proto:   b[20],
		},
		Backend: packet.IPv4(binary.LittleEndian.Uint32(b[21:])),
		Packets: binary.LittleEndian.Uint64(b[25:]),
		Bytes:   binary.LittleEndian.Uint64(b[33:]),
	}
}

// FlowIndex is one domain's durable flow set. It implements the session
// package's Spill contract.
type FlowIndex struct {
	store *Store
	name  string

	mu       sync.Mutex
	log      *os.File
	logSize  int64
	overlay  map[uint64]session.SpillRecord
	idx      *os.File // nil until the first compaction
	idxCount int
}

// FlowIndex opens (or creates) the named flow index inside the store,
// replaying the valid prefix of its spill log into the overlay. One
// instance per name is cached for the store's lifetime.
func (s *Store) FlowIndex(name string) (*FlowIndex, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if name == "" || strings.ContainsAny(name, "/\\") {
		return nil, fmt.Errorf("statestore: bad flow index name %q", name)
	}
	s.flowMu.Lock()
	defer s.flowMu.Unlock()
	if fi, ok := s.flows[name]; ok {
		return fi, nil
	}
	fi := &FlowIndex{store: s, name: name, overlay: make(map[uint64]session.SpillRecord)}
	if err := fi.open(); err != nil {
		return nil, err
	}
	s.flows[name] = fi
	return fi, nil
}

func (fi *FlowIndex) logPath() string {
	return filepath.Join(fi.store.cfg.Dir, fi.name+".flog")
}

func (fi *FlowIndex) idxPath() string {
	return filepath.Join(fi.store.cfg.Dir, fi.name+".fidx")
}

func (fi *FlowIndex) open() error {
	// Replay the spill log's longest valid prefix and truncate the tail,
	// exactly like the epoch WAL.
	data, err := os.ReadFile(fi.logPath())
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("statestore: %w", err)
	}
	recs, n := SplitFrames(data)
	for _, batch := range recs {
		if len(batch)%flowEntrySize != 0 {
			fi.store.badEpochs.Add(1)
			continue
		}
		for off := 0; off < len(batch); off += flowEntrySize {
			r := decodeFlowEntry(batch[off : off+flowEntrySize])
			fi.overlay[r.Hash] = r
		}
	}
	if n < len(data) {
		fi.store.tornRecords.Add(uint64(len(data) - n))
		if err := os.Truncate(fi.logPath(), int64(n)); err != nil {
			return fmt.Errorf("statestore: truncate torn spill tail: %w", err)
		}
	}
	log, err := os.OpenFile(fi.logPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	fi.log = log
	fi.logSize = int64(n)
	// The compacted index, if one exists. A torn size (not a multiple of
	// the entry width) cannot happen through the rename barrier; treat it
	// as absent rather than guessing.
	idx, err := os.Open(fi.idxPath())
	if err == nil {
		st, serr := idx.Stat()
		if serr == nil && st.Size()%flowEntrySize == 0 {
			fi.idx = idx
			fi.idxCount = int(st.Size() / flowEntrySize)
		} else {
			idx.Close()
		}
	} else if !os.IsNotExist(err) {
		fi.log.Close()
		return fmt.Errorf("statestore: %w", err)
	}
	return nil
}

// SpillFlows appends a batch of evicted flows (upsert by hash) and makes
// it durable per the store's fsync mode. Implements session.Spill.
func (fi *FlowIndex) SpillFlows(recs []session.SpillRecord) error {
	if len(recs) == 0 {
		return nil
	}
	if fi.store.closed.Load() {
		return ErrClosed
	}
	payload := make([]byte, 0, len(recs)*flowEntrySize)
	for _, r := range recs {
		payload = encodeFlowEntry(payload, r)
	}
	frame := AppendFrame(make([]byte, 0, frameHeaderSize+len(payload)), payload)
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if _, err := fi.log.Write(frame); err != nil {
		return fmt.Errorf("statestore: spill %s: %w", fi.name, err)
	}
	fi.logSize += int64(len(frame))
	for _, r := range recs {
		fi.overlay[r.Hash] = r
	}
	fi.store.spilled.Add(uint64(len(recs)))
	fi.store.persistBytes.Add(uint64(len(payload)))
	if after := fi.store.cfg.FlowCompactAfter; after > 0 && len(fi.overlay) >= after {
		return fi.compactLocked()
	}
	if fi.store.cfg.Fsync != FsyncNone {
		// One fsync per eviction batch — already amortized over the
		// batch, so group coalescing buys nothing here.
		if err := fi.log.Sync(); err != nil {
			return fmt.Errorf("statestore: spill %s: %w", fi.name, err)
		}
		fi.store.fsyncs.Add(1)
	}
	return nil
}

// LookupFlow reads one flow record: overlay first, then a binary search
// over the sorted on-disk index. Implements session.Spill.
func (fi *FlowIndex) LookupFlow(hash uint64) (session.SpillRecord, bool, error) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if r, ok := fi.overlay[hash]; ok {
		fi.store.promotions.Add(1)
		return r, true, nil
	}
	r, ok, err := fi.searchIdxLocked(hash)
	if ok {
		fi.store.promotions.Add(1)
	}
	return r, ok, err
}

// searchIdxLocked binary-searches the compacted index file by hash.
func (fi *FlowIndex) searchIdxLocked(hash uint64) (session.SpillRecord, bool, error) {
	if fi.idx == nil || fi.idxCount == 0 {
		return session.SpillRecord{}, false, nil
	}
	var buf [flowEntrySize]byte
	lo, hi := 0, fi.idxCount
	for lo < hi {
		mid := (lo + hi) / 2
		if _, err := fi.idx.ReadAt(buf[:], int64(mid)*flowEntrySize); err != nil {
			return session.SpillRecord{}, false, fmt.Errorf("statestore: index %s: %w", fi.name, err)
		}
		h := binary.LittleEndian.Uint64(buf[:])
		switch {
		case h == hash:
			return decodeFlowEntry(buf[:]), true, nil
		case h < hash:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return session.SpillRecord{}, false, nil
}

// FlowCount reports the number of distinct flows in the index. It
// compacts first when the overlay is non-empty, so the answer is exact
// (and the call is cheap when nothing changed). Implements session.Spill.
func (fi *FlowIndex) FlowCount() (int, error) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if len(fi.overlay) > 0 {
		if err := fi.compactLocked(); err != nil {
			return 0, err
		}
	}
	return fi.idxCount, nil
}

// Compact merges the overlay into the sorted index file and truncates
// the spill log.
func (fi *FlowIndex) Compact() error {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.compactLocked()
}

func (fi *FlowIndex) compactLocked() error {
	// Merge: current index entries, overridden/extended by the overlay.
	merged := make([]session.SpillRecord, 0, fi.idxCount+len(fi.overlay))
	if fi.idx != nil && fi.idxCount > 0 {
		old := make([]byte, fi.idxCount*flowEntrySize)
		if _, err := fi.idx.ReadAt(old, 0); err != nil {
			return fmt.Errorf("statestore: compact %s: %w", fi.name, err)
		}
		for off := 0; off < len(old); off += flowEntrySize {
			r := decodeFlowEntry(old[off : off+flowEntrySize])
			if _, shadowed := fi.overlay[r.Hash]; !shadowed {
				merged = append(merged, r)
			}
		}
	}
	for _, r := range fi.overlay {
		merged = append(merged, r)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Hash < merged[j].Hash })
	buf := make([]byte, 0, len(merged)*flowEntrySize)
	for _, r := range merged {
		buf = encodeFlowEntry(buf, r)
	}
	if err := atomicWriteFile(fi.idxPath(), buf, fi.store.cfg.Fsync != FsyncNone); err != nil {
		return fmt.Errorf("statestore: compact %s: %w", fi.name, err)
	}
	if fi.idx != nil {
		fi.idx.Close()
	}
	idx, err := os.Open(fi.idxPath())
	if err != nil {
		return fmt.Errorf("statestore: compact %s: %w", fi.name, err)
	}
	fi.idx = idx
	fi.idxCount = len(merged)
	fi.overlay = make(map[uint64]session.SpillRecord)
	if err := fi.log.Truncate(0); err != nil {
		return fmt.Errorf("statestore: compact %s: truncate log: %w", fi.name, err)
	}
	fi.logSize = 0
	fi.store.compactions.Add(1)
	return nil
}

// OverlaySize reports uncompacted put entries (test introspection).
func (fi *FlowIndex) OverlaySize() int {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return len(fi.overlay)
}

func (fi *FlowIndex) close() error {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	var first error
	if fi.log != nil {
		if fi.store.cfg.Fsync != FsyncNone {
			if err := fi.log.Sync(); err != nil {
				first = err
			}
		}
		if err := fi.log.Close(); err != nil && first == nil {
			first = err
		}
		fi.log = nil
	}
	if fi.idx != nil {
		if err := fi.idx.Close(); err != nil && first == nil {
			first = err
		}
		fi.idx = nil
	}
	return first
}

var _ session.Spill = (*FlowIndex)(nil)
