// Kill -9 recovery tier: the acceptance run for durable checkpoint
// state. A child process runs a supervised 2-worker pipeline over live
// loopback traffic with Policy.Persist pointed at an on-disk Store,
// converges on a known flow set, and is then killed with SIGKILL — no
// deferred Close, no flush, whatever the WAL's group commit made
// durable is all that survives. The parent reopens the same state
// directory, spawns fresh domains under the same worker names, and
// asserts the boot restore rebuilds the exact fault-free oracle with
// zero cold starts.
package statestore_test

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/domain"
	"repro/internal/dpdk"
	"repro/internal/firewall"
	"repro/internal/linear"
	"repro/internal/maglev"
	"repro/internal/netbricks"
	"repro/internal/netport"
	"repro/internal/packet"
	"repro/internal/session"
	"repro/internal/statestore"
)

const (
	recoveryChildEnv = "STATESTORE_RECOVERY_CHILD"
	recoveryDirEnv   = "STATESTORE_RECOVERY_DIR"
	recoveryWorkers  = 2
	recoveryFlows    = 96
)

func recoveryBackends() []maglev.Backend {
	return []maglev.Backend{
		{Name: "be-0", IP: packet.Addr(10, 1, 0, 1)},
		{Name: "be-1", IP: packet.Addr(10, 1, 0, 2)},
	}
}

func recoveryRuleDB(t testing.TB) *firewall.DB {
	t.Helper()
	db := firewall.NewDB(firewall.Deny)
	if _, err := db.AddRule(packet.Addr(10, 99, 0, 0), 16, firewall.Rule{ID: 1, Action: firewall.Allow}); err != nil {
		t.Fatal(err)
	}
	return db
}

// recoveryOracle replays one packet per flow through a fresh, fault-free
// pipeline — the ground truth the restored tables must equal.
func recoveryOracle(t *testing.T) map[uint64]packet.IPv4 {
	t.Helper()
	lb, err := maglev.NewBalancer(recoveryBackends(), maglev.DefaultTableSize)
	if err != nil {
		t.Fatal(err)
	}
	table := session.NewTable()
	base := dpdk.DefaultSpec()
	var pkts []*packet.Packet
	for i := 0; i < recoveryFlows; i++ {
		spec := base
		spec.Tuple.SrcIP += packet.IPv4(i)
		spec.Tuple.SrcPort += uint16(i % 50000)
		frame, err := packet.Build(nil, spec)
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, &packet.Packet{Data: frame})
	}
	batch := &netbricks.Batch{Pkts: pkts}
	for _, op := range []netbricks.Operator{
		netbricks.Parse{}, firewall.Operator{DB: recoveryRuleDB(t)},
		maglev.Operator{LB: lb}, session.Operator{T: table},
	} {
		if err := op.ProcessBatch(batch); err != nil {
			t.Fatalf("oracle %s: %v", op.Name(), err)
		}
	}
	if len(batch.Dropped) != 0 {
		t.Fatalf("oracle replay dropped %d packets", len(batch.Dropped))
	}
	return table.Entries()
}

// recoveryServeChild is the process that gets killed: a supervised
// pipeline persisting every checkpoint epoch to the state directory.
// It prints "ADDR <addr>" once and then "STAT flows=<n> p=<c0>,<c1>"
// lines until SIGKILL arrives.
func recoveryServeChild(t *testing.T) {
	dir := os.Getenv(recoveryDirEnv)
	store, err := statestore.Open(statestore.Config{Dir: dir, Fsync: statestore.FsyncGroup})
	if err != nil {
		t.Fatalf("child: open store: %v", err)
	}
	port, err := netport.Open(netport.Config{
		Listen:   "127.0.0.1:0",
		Queues:   recoveryWorkers,
		RingSize: 256,
		PollWait: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("child: open port: %v", err)
	}
	db := recoveryRuleDB(t)
	tables := make([]*session.Table, recoveryWorkers)
	balancers := make([]*maglev.Balancer, recoveryWorkers)
	for w := range tables {
		tables[w] = session.NewTable()
		balancers[w], err = maglev.NewBalancer(recoveryBackends(), maglev.DefaultTableSize)
		if err != nil {
			t.Fatal(err)
		}
	}
	r := &netbricks.ShardedRunner{
		Port: port, Workers: recoveryWorkers, BatchSize: 8,
		Supervise: true,
		NewDirect: func(w int) *netbricks.Pipeline {
			return netbricks.NewPipeline(
				netbricks.Parse{}, firewall.Operator{DB: db},
				maglev.Operator{LB: balancers[w]}, session.Operator{T: tables[w]},
			)
		},
		NewState: func(w int) domain.Stateful {
			return domain.NewStateSet().
				Add("maglev", balancers[w]).
				Add("session", tables[w])
		},
		Policy: domain.Policy{
			Backoff:         20 * time.Microsecond,
			MaxBackoff:      time.Millisecond,
			MaxRestarts:     -1,
			CheckpointEvery: 2 * time.Millisecond,
			Persist:         store,
		},
	}
	go r.Run(1 << 30)
	fmt.Printf("ADDR %s\n", port.Addr())
	deadline := time.Now().Add(90 * time.Second)
	for time.Now().Before(deadline) { // SIGKILL is the expected exit
		union := make(map[uint64]bool)
		for _, tbl := range tables {
			for h := range tbl.Entries() {
				union[h] = true
			}
		}
		persisted := make([]string, 0, recoveryWorkers)
		for _, sn := range r.DomainSnapshots() {
			persisted = append(persisted, fmt.Sprintf("%d", sn.Persisted))
		}
		fmt.Printf("STAT flows=%d p=%s\n", len(union), strings.Join(persisted, ","))
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("child: never killed")
}

// TestRecoveryKill9 is the parent driver (and, re-exec'd with the env
// var set, the victim child).
func TestRecoveryKill9(t *testing.T) {
	if os.Getenv(recoveryChildEnv) == "serve" {
		recoveryServeChild(t)
		return
	}
	if testing.Short() {
		t.Skip("kill -9 recovery tier skipped in -short")
	}
	dir := t.TempDir()
	oracle := recoveryOracle(t)

	cmd := exec.Command(os.Args[0], "-test.run=TestRecoveryKill9$")
	cmd.Env = append(os.Environ(),
		recoveryChildEnv+"=serve",
		recoveryDirEnv+"="+dir,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// Drive the child with the oracle's flow set until the tables hold
	// every flow, then wait for two more persisted epochs per worker:
	// the second one necessarily started after convergence, so the last
	// durable epoch on every worker contains its complete share.
	var genStop chan struct{}
	genDone := make(chan error, 1)
	scanner := bufio.NewScanner(stdout)
	var baseline []uint64
	deadline := time.Now().Add(60 * time.Second)
	for scanner.Scan() {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the child to converge and persist")
		}
		line := scanner.Text()
		if addr, ok := strings.CutPrefix(line, "ADDR "); ok {
			genStop = make(chan struct{})
			gen := &netport.Pktgen{
				Target: addr,
				Base:   dpdk.DefaultSpec(),
				Flows:  recoveryFlows,
				PPS:    20000,
			}
			go func() {
				_, err := gen.Run(genStop)
				genDone <- err
			}()
			continue
		}
		var flows int
		var pStr string
		if _, err := fmt.Sscanf(line, "STAT flows=%d p=%s", &flows, &pStr); err != nil {
			continue
		}
		persisted := make([]uint64, 0, recoveryWorkers)
		for _, s := range strings.Split(pStr, ",") {
			var v uint64
			fmt.Sscanf(s, "%d", &v)
			persisted = append(persisted, v)
		}
		if len(persisted) < recoveryWorkers {
			continue
		}
		if flows < len(oracle) {
			continue
		}
		if baseline == nil {
			baseline = append([]uint64(nil), persisted...)
			continue
		}
		ready := true
		for w := 0; w < recoveryWorkers; w++ {
			if persisted[w] < baseline[w]+2 {
				ready = false
			}
		}
		if ready {
			break
		}
	}
	if baseline == nil {
		t.Fatalf("child exited before converging (scanner err: %v)", scanner.Err())
	}

	// The hard crash: SIGKILL, no cleanup path runs in the child.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	killed = true
	cmd.Wait()
	close(genStop)
	<-genDone

	// Recovery: reopen the state directory cold and spawn fresh domains
	// under the same worker names. Boot restore must rebuild the exact
	// oracle — no traffic is flowing anymore, so anything missing here
	// is durably lost.
	store, err := statestore.Open(statestore.Config{Dir: dir, Fsync: statestore.FsyncGroup})
	if err != nil {
		t.Fatalf("reopen store after kill -9: %v", err)
	}
	defer store.Close()
	sup := domain.NewSupervisor(domain.Policy{
		Backoff: time.Millisecond, MaxRestarts: -1,
		CheckpointEvery: time.Hour,
		Persist:         store,
	})
	defer sup.Close()
	got := make(map[uint64]packet.IPv4)
	var restores, coldStarts uint64
	for w := 0; w < recoveryWorkers; w++ {
		tbl := session.NewTable()
		lb, err := maglev.NewBalancer(recoveryBackends(), maglev.DefaultTableSize)
		if err != nil {
			t.Fatal(err)
		}
		d, err := domain.Spawn(sup, domain.Config[int]{
			Name:  fmt.Sprintf("worker-%d", w),
			State: domain.NewStateSet().Add("maglev", lb).Add("session", tbl),
			Handler: func(c *domain.Ctx, msg linear.Owned[int]) error {
				_, err := msg.Into()
				return err
			},
		})
		if err != nil {
			t.Fatalf("respawn worker-%d: %v", w, err)
		}
		sn := d.Snapshot()
		restores += sn.Restores
		coldStarts += sn.ColdStarts
		for h, ip := range tbl.Entries() {
			if prev, ok := got[h]; ok && prev != ip {
				t.Fatalf("flow %#x restored with backend %v and %v", h, prev, ip)
			}
			got[h] = ip
		}
	}
	if restores != recoveryWorkers || coldStarts != 0 {
		t.Fatalf("restores=%d coldStarts=%d, want %d/0", restores, coldStarts, recoveryWorkers)
	}
	missing, wrong, extra := 0, 0, 0
	for h, ip := range oracle {
		switch g, ok := got[h]; {
		case !ok:
			missing++
		case g != ip:
			wrong++
		}
	}
	for h := range got {
		if _, ok := oracle[h]; !ok {
			extra++
		}
	}
	if missing != 0 || wrong != 0 || extra != 0 {
		t.Fatalf("restored tables diverge from oracle: %d/%d missing, %d wrong, %d extra",
			missing, len(oracle), wrong, extra)
	}
	t.Logf("kill -9 recovery: %d flows restored exactly, %d restores, 0 cold starts", len(got), restores)
}
