package statestore_test

// Checkpoint-to-disk cost: how much a durable epoch adds over the pure
// in-memory checkpoint it wraps. BenchmarkCheckpointEpochDisk measures
// its own in-memory baseline before the timed region and reports the
// ratio as "x-ram", which bench-gate holds under a ceiling — the WAL
// must stay a bounded multiplier on the RAM path, not a cliff.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/packet"
	"repro/internal/session"
	"repro/internal/statestore"
)

const benchFlows = 4096

func benchTable(b *testing.B) *session.Table {
	b.Helper()
	tbl := session.NewTable()
	for i := 0; i < benchFlows; i++ {
		tu := packet.FiveTuple{
			SrcIP:   packet.IPv4(0x0a000000 + uint32(i)),
			DstIP:   0x0a630001,
			SrcPort: uint16(1024 + i%50000),
			DstPort: 80,
			Proto:   17,
		}
		tbl.Track(tu, packet.IPv4(0xc0a80001+uint32(i%8)), 100)
	}
	return tbl
}

// ramEpoch is the in-memory epoch: snapshot + token encode, nothing
// touching disk. Encoding is included on both sides so the ratio
// isolates the WAL append + group fsync.
func ramEpoch(b *testing.B, tbl *session.Table, engine *checkpoint.Engine) []byte {
	b.Helper()
	snap, err := tbl.Checkpoint(engine)
	if err != nil {
		b.Fatal(err)
	}
	payload, err := tbl.EncodeToken(snap)
	if err != nil {
		b.Fatal(err)
	}
	return payload
}

func BenchmarkCheckpointEpochRAM(b *testing.B) {
	tbl := benchTable(b)
	engine := checkpoint.NewEngine(checkpoint.RcAware)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ramEpoch(b, tbl, engine)
	}
}

func BenchmarkCheckpointEpochDisk(b *testing.B)       { benchEpochDisk(b, statestore.FsyncGroup) }
func BenchmarkCheckpointEpochDiskAlways(b *testing.B) { benchEpochDisk(b, statestore.FsyncAlways) }

func benchEpochDisk(b *testing.B, mode statestore.FsyncMode) {
	tbl := benchTable(b)
	engine := checkpoint.NewEngine(checkpoint.RcAware)
	store, err := statestore.Open(statestore.Config{Dir: b.TempDir(), Fsync: mode})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()

	// In-process baseline: the same epochs without the store.
	const baselineIters = 32
	start := time.Now()
	for i := 0; i < baselineIters; i++ {
		ramEpoch(b, tbl, engine)
	}
	ramPerOp := time.Since(start) / baselineIters

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := ramEpoch(b, tbl, engine)
		if err := store.PersistEpoch("bench", uint64(i+1), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	diskPerOp := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(float64(diskPerOp)/float64(ramPerOp), "x-ram")
}

func BenchmarkFlowIndexSpill(b *testing.B) {
	store, err := statestore.Open(statestore.Config{Dir: b.TempDir(), Fsync: statestore.FsyncGroup})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	ix, err := store.FlowIndex("bench")
	if err != nil {
		b.Fatal(err)
	}
	const batch = 512
	recs := make([]session.SpillRecord, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range recs {
			h := uint64(i)*batch + uint64(j)
			recs[j] = session.SpillRecord{Hash: h, Backend: 0xc0a80001, Packets: 1, Bytes: 100}
		}
		if err := ix.SpillFlows(recs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "flows/s")
}

func BenchmarkFlowIndexLookup(b *testing.B) {
	store, err := statestore.Open(statestore.Config{Dir: b.TempDir(), Fsync: statestore.FsyncNone})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	ix, err := store.FlowIndex("bench")
	if err != nil {
		b.Fatal(err)
	}
	const flows = 1 << 16
	recs := make([]session.SpillRecord, flows)
	for i := range recs {
		recs[i] = session.SpillRecord{Hash: uint64(i)*2654435761 + 1, Backend: 0xc0a80001}
	}
	if err := ix.SpillFlows(recs); err != nil {
		b.Fatal(err)
	}
	if err := ix.Compact(); err != nil { // lookups hit the sorted index, not the overlay
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := recs[i%flows].Hash
		if _, ok, err := ix.LookupFlow(h); err != nil || !ok {
			b.Fatal(fmt.Errorf("lookup %x: ok=%v err=%v", h, ok, err))
		}
	}
}
