package statestore_test

// Property/state-machine test: random sequences of {mutate, checkpoint,
// crash+restart, compact, tear} driven against a real session.Table
// persisting through a real Store, compared to an in-memory oracle
// after every restart. Two properties:
//
//   - Epoch durability: after any crash, the restored table equals the
//     oracle's image at the last persisted checkpoint — exactly, never a
//     partial epoch, regardless of interleaved compactions and garbage
//     appended to the WAL.
//   - Cache-over-index: with a small RAM cap, every flow that was either
//     durable in an epoch or evicted to the flow index is found by
//     Lookup with its correct backend after a crash; lookups never
//     return a wrong backend.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/packet"
	"repro/internal/session"
	"repro/internal/statestore"
)

// propFlow derives flow i's deterministic identity: tuple and backend.
func propFlow(i int) (packet.FiveTuple, packet.IPv4) {
	tu := packet.FiveTuple{
		SrcIP:   packet.IPv4(0x0a000000 + uint32(i)),
		DstIP:   packet.IPv4(0x0a630000 + uint32(i%7)),
		SrcPort: uint16(1024 + i%50000),
		DstPort: 80,
		Proto:   17,
	}
	return tu, packet.IPv4(0xc0a80001 + uint32(i%3))
}

func entriesEqualProp(t *testing.T, got map[uint64]packet.IPv4, want map[uint64]packet.IPv4, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d flows, want %d", what, len(got), len(want))
	}
	for h, ip := range want {
		if got[h] != ip {
			t.Fatalf("%s: flow %x → %v, want %v", what, h, got[h], ip)
		}
	}
}

func TestPropertyEpochDurability(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			open := func() *statestore.Store {
				s, err := statestore.Open(statestore.Config{Dir: dir, Fsync: statestore.FsyncNone, CompactAfter: -1})
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				return s
			}
			store := open()
			defer func() { store.Close() }()
			tbl := session.NewTable()
			engine := checkpoint.NewEngine(checkpoint.RcAware)

			// Oracle: the live flow set and the image at the last durable
			// checkpoint.
			live := map[uint64]packet.IPv4{}
			durable := map[uint64]packet.IPv4{}
			seq := uint64(0)

			for step := 0; step < 120; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // mutate: track a handful of flows
					for k := 0; k < 1+rng.Intn(20); k++ {
						i := rng.Intn(200)
						tu, ip := propFlow(i)
						tbl.Track(tu, ip, 100)
						live[tu.Hash()] = ip
					}
				case op < 6: // checkpoint + persist
					snap, err := tbl.Checkpoint(engine)
					if err != nil {
						t.Fatalf("checkpoint: %v", err)
					}
					payload, err := tbl.EncodeToken(snap)
					if err != nil {
						t.Fatalf("encode: %v", err)
					}
					seq++
					if err := store.PersistEpoch("t", seq, payload); err != nil {
						t.Fatalf("persist: %v", err)
					}
					durable = map[uint64]packet.IPv4{}
					for h, ip := range live {
						durable[h] = ip
					}
				case op < 7: // compact
					if err := store.Compact(); err != nil {
						t.Fatalf("compact: %v", err)
					}
				case op < 8: // tear: garbage lands on the WAL tail
					store.Close()
					f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
					if err != nil {
						t.Fatal(err)
					}
					junk := make([]byte, 1+rng.Intn(40))
					rng.Read(junk)
					f.Write(junk)
					f.Close()
					store = open()
				default: // crash + restart
					store.Close()
					store = open()
					tbl = session.NewTable()
					payload, gotSeq, ok, err := store.LastEpoch("t")
					if err != nil {
						t.Fatalf("LastEpoch: %v", err)
					}
					if ok {
						if gotSeq != seq {
							t.Fatalf("recovered seq %d, want %d", gotSeq, seq)
						}
						token, err := tbl.DecodeToken(payload)
						if err != nil {
							t.Fatalf("decode: %v", err)
						}
						if err := tbl.Restore(token); err != nil {
							t.Fatalf("restore: %v", err)
						}
					} else if seq != 0 {
						t.Fatalf("durable epoch %d lost", seq)
					}
					live = map[uint64]packet.IPv4{}
					for h, ip := range durable {
						live[h] = ip
					}
					entriesEqualProp(t, tbl.Entries(), durable, fmt.Sprintf("step %d restart", step))
				}
			}
		})
	}
}

// evictionSpy wraps a Spill and records every hash ever evicted, so the
// oracle knows exactly which flows must be durable in the index.
type evictionSpy struct {
	inner   session.Spill
	evicted map[uint64]packet.IPv4
}

func (s *evictionSpy) SpillFlows(recs []session.SpillRecord) error {
	if err := s.inner.SpillFlows(recs); err != nil {
		return err
	}
	for _, r := range recs {
		s.evicted[r.Hash] = r.Backend
	}
	return nil
}

func (s *evictionSpy) LookupFlow(hash uint64) (session.SpillRecord, bool, error) {
	return s.inner.LookupFlow(hash)
}

func (s *evictionSpy) FlowCount() (int, error) { return s.inner.FlowCount() }

func TestPropertyCacheOverIndex(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			const ramCap = 48
			evicted := map[uint64]packet.IPv4{}
			open := func() (*statestore.Store, *session.Table) {
				s, err := statestore.Open(statestore.Config{Dir: dir, Fsync: statestore.FsyncNone, FlowCompactAfter: 64})
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				fi, err := s.FlowIndex("t")
				if err != nil {
					t.Fatalf("FlowIndex: %v", err)
				}
				tbl := session.NewTable()
				tbl.SetSpill(&evictionSpy{inner: fi, evicted: evicted}, ramCap)
				return s, tbl
			}
			store, tbl := open()
			defer func() { store.Close() }()
			engine := checkpoint.NewEngine(checkpoint.RcAware)

			tracked := map[uint64]packet.IPv4{}
			durable := map[uint64]packet.IPv4{}
			seq := uint64(0)

			check := func(what string) {
				t.Helper()
				// Everything durable (epoch image or evicted to the index)
				// must resolve to its true backend.
				for h, ip := range durable {
					got, ok := tbl.Lookup(h)
					if !ok || got != ip {
						t.Fatalf("%s: durable flow %x → %v,%v; want %v", what, h, got, ok, ip)
					}
				}
				for h, ip := range evicted {
					got, ok := tbl.Lookup(h)
					if !ok || got != ip {
						t.Fatalf("%s: evicted flow %x → %v,%v; want %v", what, h, got, ok, ip)
					}
				}
				// And nothing ever resolves wrongly.
				for h, ip := range tracked {
					if got, ok := tbl.Lookup(h); ok && got != ip {
						t.Fatalf("%s: flow %x → wrong backend %v, want %v", what, h, got, ip)
					}
				}
				if _, ok := tbl.Lookup(0xfeedfacecafebeef); ok {
					t.Fatalf("%s: phantom flow found", what)
				}
			}

			for step := 0; step < 60; step++ {
				switch op := rng.Intn(10); {
				case op < 6: // track a burst — enough to force evictions
					for k := 0; k < 10+rng.Intn(30); k++ {
						i := rng.Intn(400)
						tu, ip := propFlow(i)
						tbl.Track(tu, ip, 100)
						tracked[tu.Hash()] = ip
					}
				case op < 8: // checkpoint + persist the RAM cache image
					snap, err := tbl.Checkpoint(engine)
					if err != nil {
						t.Fatalf("checkpoint: %v", err)
					}
					payload, err := tbl.EncodeToken(snap)
					if err != nil {
						t.Fatalf("encode: %v", err)
					}
					seq++
					if err := store.PersistEpoch("t", seq, payload); err != nil {
						t.Fatalf("persist: %v", err)
					}
					durable = map[uint64]packet.IPv4{}
					for h, ip := range tbl.Entries() {
						durable[h] = ip
					}
				default: // crash + restart
					store.Close()
					store, tbl = open()
					payload, _, ok, err := store.LastEpoch("t")
					if err != nil {
						t.Fatalf("LastEpoch: %v", err)
					}
					if ok {
						token, err := tbl.DecodeToken(payload)
						if err != nil {
							t.Fatalf("decode: %v", err)
						}
						if err := tbl.Restore(token); err != nil {
							t.Fatalf("restore: %v", err)
						}
					}
					// Flows neither durable nor evicted died with the
					// process: forget them.
					for h := range tracked {
						if _, inEpoch := durable[h]; inEpoch {
							continue
						}
						if _, inIndex := evicted[h]; inIndex {
							continue
						}
						delete(tracked, h)
					}
					check(fmt.Sprintf("step %d restart", step))
				}
				if step%10 == 9 {
					check(fmt.Sprintf("step %d live", step))
				}
			}
			if len(evicted) == 0 {
				t.Fatal("property run never evicted a flow — cap too high to test anything")
			}
		})
	}
}
