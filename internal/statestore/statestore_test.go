package statestore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string, cfg Config) *Store {
	t.Helper()
	cfg.Dir = dir
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPersistAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{})
	for seq := uint64(1); seq <= 5; seq++ {
		if err := s.PersistEpoch("worker-0", seq, []byte(fmt.Sprintf("epoch-%d", seq))); err != nil {
			t.Fatalf("PersistEpoch: %v", err)
		}
	}
	if err := s.PersistEpoch("worker-1", 3, []byte("other")); err != nil {
		t.Fatalf("PersistEpoch: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openT(t, dir, Config{})
	payload, seq, ok, err := s2.LastEpoch("worker-0")
	if err != nil || !ok {
		t.Fatalf("LastEpoch: ok=%v err=%v", ok, err)
	}
	if seq != 5 || string(payload) != "epoch-5" {
		t.Fatalf("recovered seq=%d payload=%q, want 5/epoch-5", seq, payload)
	}
	if _, seq, ok, _ := s2.LastEpoch("worker-1"); !ok || seq != 3 {
		t.Fatalf("worker-1 seq=%d ok=%v, want 3/true", seq, ok)
	}
	if _, _, ok, _ := s2.LastEpoch("ghost"); ok {
		t.Fatal("ghost domain has an epoch")
	}
	if got := s2.Names(); len(got) != 2 || got[0] != "worker-0" || got[1] != "worker-1" {
		t.Fatalf("Names = %v", got)
	}
}

func TestReopenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{})
	if err := s.PersistEpoch("w", 1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := s.PersistEpoch("w", 2, []byte("better")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the tail mid-record, as a kill -9 mid-append would.
	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Config{})
	payload, seq, ok, err := s2.LastEpoch("w")
	if err != nil || !ok {
		t.Fatalf("LastEpoch after tear: ok=%v err=%v", ok, err)
	}
	if seq != 1 || string(payload) != "good" {
		t.Fatalf("recovered seq=%d payload=%q, want the un-torn epoch 1", seq, payload)
	}
	if st := s2.StatsSnapshot(); st.TornRecords == 0 {
		t.Fatal("torn tail not counted")
	}
	// The tail was truncated: appends splice onto a clean prefix.
	if err := s2.PersistEpoch("w", 2, []byte("again")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openT(t, dir, Config{})
	if _, seq, ok, _ := s3.LastEpoch("w"); !ok || seq != 2 {
		t.Fatalf("after re-append: seq=%d ok=%v, want 2/true", seq, ok)
	}
}

func TestAppendedGarbageIgnored(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{})
	if err := s.PersistEpoch("w", 1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(bytes.Repeat([]byte{0x5a}, 100))
	f.Close()
	s2 := openT(t, dir, Config{})
	if _, seq, ok, _ := s2.LastEpoch("w"); !ok || seq != 1 {
		t.Fatalf("seq=%d ok=%v, want 1/true", seq, ok)
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every append compacts almost immediately.
	s := openT(t, dir, Config{CompactAfter: 256})
	for seq := uint64(1); seq <= 50; seq++ {
		if err := s.PersistEpoch("w", seq, bytes.Repeat([]byte{byte(seq)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.StatsSnapshot()
	if st.Compactions == 0 {
		t.Fatal("no compactions ran")
	}
	if st.WALBytes >= 50*64 {
		t.Fatalf("WAL grew unbounded: %d bytes", st.WALBytes)
	}
	s.Close()
	s2 := openT(t, dir, Config{})
	payload, seq, ok, err := s2.LastEpoch("w")
	if err != nil || !ok || seq != 50 {
		t.Fatalf("after compaction: seq=%d ok=%v err=%v", seq, ok, err)
	}
	if !bytes.Equal(payload, bytes.Repeat([]byte{50}, 64)) {
		t.Fatal("compacted payload differs")
	}
}

func TestExplicitCompactThenReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{CompactAfter: -1})
	for seq := uint64(1); seq <= 10; seq++ {
		if err := s.PersistEpoch("w", seq, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := s.WALSize(); got != 0 {
		t.Fatalf("WAL size after compact = %d", got)
	}
	s.Close()
	s2 := openT(t, dir, Config{})
	if _, seq, ok, _ := s2.LastEpoch("w"); !ok || seq != 10 {
		t.Fatalf("seq=%d ok=%v, want 10", seq, ok)
	}
}

func TestConcurrentPersist(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{Fsync: FsyncGroup})
	const workers, epochs = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("worker-%d", w)
			for seq := uint64(1); seq <= epochs; seq++ {
				if err := s.PersistEpoch(name, seq, []byte(fmt.Sprintf("%s/%d", name, seq))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.StatsSnapshot()
	if st.Persisted != workers*epochs {
		t.Fatalf("persisted %d, want %d", st.Persisted, workers*epochs)
	}
	// Group commit's whole point: far fewer fsyncs than appends.
	if st.Fsyncs >= st.Persisted {
		t.Fatalf("group commit did not coalesce: %d fsyncs for %d appends", st.Fsyncs, st.Persisted)
	}
	s.Close()
	s2 := openT(t, dir, Config{})
	for w := 0; w < workers; w++ {
		name := fmt.Sprintf("worker-%d", w)
		payload, seq, ok, err := s2.LastEpoch(name)
		if err != nil || !ok || seq != epochs {
			t.Fatalf("%s: seq=%d ok=%v err=%v", name, seq, ok, err)
		}
		if want := fmt.Sprintf("%s/%d", name, epochs); string(payload) != want {
			t.Fatalf("%s payload = %q, want %q", name, payload, want)
		}
	}
}

func TestFsyncModes(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncGroup, FsyncAlways, FsyncNone} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			s := openT(t, dir, Config{Fsync: mode})
			for seq := uint64(1); seq <= 5; seq++ {
				if err := s.PersistEpoch("w", seq, []byte{byte(seq)}); err != nil {
					t.Fatal(err)
				}
			}
			st := s.StatsSnapshot()
			switch mode {
			case FsyncAlways:
				if st.Fsyncs != 5 {
					t.Fatalf("always: %d fsyncs, want 5", st.Fsyncs)
				}
			case FsyncNone:
				if st.Fsyncs != 0 {
					t.Fatalf("none: %d fsyncs, want 0", st.Fsyncs)
				}
			}
			s.Close()
			s2 := openT(t, dir, Config{Fsync: mode})
			if _, seq, ok, _ := s2.LastEpoch("w"); !ok || seq != 5 {
				t.Fatalf("seq=%d ok=%v, want 5/true", seq, ok)
			}
		})
	}
}

func TestParseFsyncMode(t *testing.T) {
	for s, want := range map[string]FsyncMode{"group": FsyncGroup, "always": FsyncAlways, "none": FsyncNone} {
		got, err := ParseFsyncMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestClosedStore(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{})
	s.Close()
	if err := s.PersistEpoch("w", 1, nil); err != ErrClosed {
		t.Fatalf("PersistEpoch after close: %v", err)
	}
	if _, _, _, err := s.LastEpoch("w"); err != ErrClosed {
		t.Fatalf("LastEpoch after close: %v", err)
	}
	if _, err := s.FlowIndex("w"); err != ErrClosed {
		t.Fatalf("FlowIndex after close: %v", err)
	}
}

func TestEpochDecodeRejectsGarbage(t *testing.T) {
	good := encodeEpoch("w", 7, 42, []byte("tok"))
	if _, _, _, _, err := decodeEpoch(good); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	for i := 1; i < len(good); i++ {
		if _, _, _, _, err := decodeEpoch(good[:i]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
	}
	if _, _, _, _, err := decodeEpoch(nil); err == nil {
		t.Fatal("empty record accepted")
	}
}
