// Package statestore is the log-structured durable store for checkpoint
// epochs and spilled flow state — the layer that takes the paper's §5
// in-RAM checkpoint tokens and makes them survive a process kill, not
// just a supervised domain restart.
//
// Layout on disk (one directory per store):
//
//	wal.log      append-only epoch records, one frame per persisted epoch
//	base.db      compacted epoch image: the newest frame per domain
//	<name>.flog  per-domain flow spill log (framed SpillRecord batches)
//	<name>.fidx  per-domain compacted flow index, sorted by flow hash
//
// Every file shares one record framing (this file): a little-endian
// u32 payload length, a u32 CRC-32C of the payload, then the payload.
// Recovery reads the longest valid prefix of each log and truncates the
// torn tail, so a kill -9 mid-append loses at most the record being
// written — never a previously fsynced epoch, and never yields a
// partial epoch (the frame either passes its CRC whole or is dropped).
package statestore

import (
	"encoding/binary"
	"hash/crc32"
)

// frameHeaderSize is the fixed per-record overhead: u32 length, u32 CRC.
const frameHeaderSize = 8

// MaxFrame bounds a single record's payload. Anything larger in a log is
// treated as corruption (a torn or bit-flipped length prefix), ending
// the valid prefix there.
const MaxFrame = 64 << 20

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends one framed record holding payload to buf and
// returns the extended buffer.
func AppendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// SplitFrames decodes the longest valid prefix of a log: every complete,
// CRC-clean record in order, and n, the byte length of that prefix.
// data[n:] is the torn tail (truncated header, short payload, oversized
// length, or CRC mismatch) and is never partially decoded. The returned
// payloads are subslices of data, not copies.
func SplitFrames(data []byte) (recs [][]byte, n int) {
	for {
		rest := data[n:]
		if len(rest) < frameHeaderSize {
			return recs, n
		}
		length := binary.LittleEndian.Uint32(rest)
		if length > MaxFrame || int(length) > len(rest)-frameHeaderSize {
			return recs, n
		}
		sum := binary.LittleEndian.Uint32(rest[4:])
		payload := rest[frameHeaderSize : frameHeaderSize+int(length)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, n
		}
		recs = append(recs, payload)
		n += frameHeaderSize + int(length)
	}
}
