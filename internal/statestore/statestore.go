package statestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// FsyncMode selects the durability level of epoch and spill appends.
type FsyncMode int

const (
	// FsyncGroup (the default) group-commits: every append requests a
	// sync, but concurrent appenders coalesce onto one fsync — a worker
	// whose record was covered by a sibling's in-flight sync returns
	// without issuing its own. Durability per epoch, ~one fsync per
	// batch of concurrent epochs.
	FsyncGroup FsyncMode = iota
	// FsyncAlways issues one fsync per append, under the append lock —
	// strict ordering, maximum latency.
	FsyncAlways
	// FsyncNone never syncs; durability is whatever the kernel flushed.
	// Crash recovery still works (longest valid prefix), it just may
	// recover an older epoch.
	FsyncNone
)

// String implements fmt.Stringer.
func (m FsyncMode) String() string {
	switch m {
	case FsyncGroup:
		return "group"
	case FsyncAlways:
		return "always"
	case FsyncNone:
		return "none"
	default:
		return fmt.Sprintf("FsyncMode(%d)", int(m))
	}
}

// ParseFsyncMode parses the -fsync flag values.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "group":
		return FsyncGroup, nil
	case "always":
		return FsyncAlways, nil
	case "none":
		return FsyncNone, nil
	default:
		return 0, fmt.Errorf("statestore: unknown fsync mode %q (want group, always, or none)", s)
	}
}

// Config parameterizes Open.
type Config struct {
	// Dir is the store directory; created if missing.
	Dir string
	// Fsync is the durability mode for epoch and spill appends.
	Fsync FsyncMode
	// CompactAfter is the WAL size (bytes) past which an append triggers
	// inline compaction into base.db. Positive fixes the threshold;
	// negative disables compaction. Zero (the default) adapts it to the
	// workload: autoCompactGenerations × the observed live-state size
	// (domain count × epoch payload size, tracked as epochs land),
	// clamped to [autoCompactMinBytes, autoCompactMaxBytes]. A fixed
	// byte threshold compacts every couple of epochs when many domains
	// write large tokens and near-never for one small domain; scaling by
	// live-state size makes the cadence a constant number of whole-state
	// generations either way.
	CompactAfter int64
	// FlowCompactAfter is the per-index overlay entry count past which a
	// spill batch triggers flow-index compaction. Default 8192; negative
	// disables.
	FlowCompactAfter int
}

// epochRec is the in-memory view of a domain's newest durable epoch.
type epochRec struct {
	seq   uint64
	at    int64 // unix nanos, informational
	token []byte
}

// Store is the durable epoch store: an append-only WAL of checkpoint
// tokens plus a compacted base image, with per-domain flow indexes
// hanging off it. One Store serves every domain of a process; appends
// from concurrent workers serialize on mu and coalesce their fsyncs.
type Store struct {
	cfg Config

	mu        sync.Mutex // guards wal, walSize, epochs, liveBytes, compaction
	wal       *os.File
	walSize   int64
	epochs    map[string]epochRec
	liveBytes int64 // sum of current epoch token sizes across domains

	// Group commit: appended counts records written, synced the highest
	// count known flushed. syncMu serializes the fsync itself.
	appended atomic.Uint64
	syncMu   sync.Mutex
	synced   atomic.Uint64

	flowMu sync.Mutex
	flows  map[string]*FlowIndex

	closed atomic.Bool

	// Telemetry cells (registered via RegisterMetrics).
	persisted    telemetry.Counter
	persistBytes telemetry.Counter
	fsyncs       telemetry.Counter
	compactions  telemetry.Counter
	tornRecords  telemetry.Counter
	badEpochs    telemetry.Counter
	spilled      telemetry.Counter
	promotions   telemetry.Counter
}

// Stats is a point-in-time copy of the store's counters.
type Stats struct {
	Epochs       int    // domains with a durable epoch
	Persisted    uint64 // epoch records appended by this process
	PersistBytes uint64 // payload bytes appended (epochs + spills)
	Fsyncs       uint64
	Compactions  uint64
	TornRecords  uint64 // torn-tail bytes truncated + undecodable records dropped at open
	Spilled      uint64 // flow records spilled to indexes
	Promotions   uint64 // flow records read back out of indexes
	WALBytes     int64
}

const (
	walName  = "wal.log"
	baseName = "base.db"

	defaultFlowCompactAfter = 8192

	// Adaptive compaction (Config.CompactAfter == 0): compact once the
	// WAL holds about this many generations of the whole live state. The
	// clamp floor keeps a single tiny domain from compacting every few
	// appends; the ceiling bounds replay time however large the state.
	autoCompactGenerations = 64
	autoCompactMinBytes    = 256 << 10
	autoCompactMaxBytes    = 256 << 20
)

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("statestore: closed")

// Open opens (or creates) the store rooted at cfg.Dir, replaying the
// longest valid prefix of the WAL over the compacted base image and
// truncating any torn tail. After Open returns, LastEpoch serves the
// newest durable epoch per domain.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("statestore: Config.Dir is required")
	}
	if cfg.FlowCompactAfter == 0 {
		cfg.FlowCompactAfter = defaultFlowCompactAfter
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("statestore: %w", err)
	}
	s := &Store{
		cfg:    cfg,
		epochs: make(map[string]epochRec),
		flows:  make(map[string]*FlowIndex),
	}
	if err := s.loadBase(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(cfg.Dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("statestore: %w", err)
	}
	s.wal = wal
	return s, nil
}

// loadBase reads the compacted epoch image. A torn base tail (possible
// only if a crash beat the rename barrier, which the write path
// prevents) degrades to the valid prefix.
func (s *Store) loadBase() error {
	data, err := os.ReadFile(filepath.Join(s.cfg.Dir, baseName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	recs, n := SplitFrames(data)
	if n < len(data) {
		s.tornRecords.Add(uint64(len(data) - n))
	}
	for _, rec := range recs {
		s.applyEpochRecord(rec)
	}
	return nil
}

// replayWAL applies the WAL's longest valid prefix and truncates the
// file to it, so the next append never splices new frames onto a torn
// tail.
func (s *Store) replayWAL() error {
	path := filepath.Join(s.cfg.Dir, walName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	recs, n := SplitFrames(data)
	for _, rec := range recs {
		s.applyEpochRecord(rec)
	}
	if n < len(data) {
		s.tornRecords.Add(uint64(len(data) - n))
		if err := os.Truncate(path, int64(n)); err != nil {
			return fmt.Errorf("statestore: truncate torn tail: %w", err)
		}
	}
	s.walSize = int64(n)
	s.liveBytes = 0
	for _, rec := range s.epochs {
		s.liveBytes += int64(len(rec.token))
	}
	return nil
}

// applyEpochRecord merges one decoded record into the epoch map; newer
// sequence numbers win (replay order and seq order agree for a single
// writer, but the base + WAL merge needs the comparison). Records that
// frame-decode but fail epoch decoding are counted and skipped, never
// fatal: one bad record must not cost the epochs around it.
func (s *Store) applyEpochRecord(rec []byte) {
	name, seq, at, token, err := decodeEpoch(rec)
	if err != nil {
		s.badEpochs.Add(1)
		return
	}
	if cur, ok := s.epochs[name]; ok && cur.seq >= seq {
		return
	}
	s.epochs[name] = epochRec{seq: seq, at: at, token: token}
}

// compactThresholdLocked resolves the effective WAL compaction threshold
// for this append. Caller holds s.mu.
func (s *Store) compactThresholdLocked() int64 {
	if s.cfg.CompactAfter > 0 {
		return s.cfg.CompactAfter
	}
	th := autoCompactGenerations * (s.liveBytes + int64(len(s.epochs))*frameHeaderSize)
	if th < autoCompactMinBytes {
		return autoCompactMinBytes
	}
	if th > autoCompactMaxBytes {
		return autoCompactMaxBytes
	}
	return th
}

// Epoch payload layout (inside a frame):
//
//	u8  version (1)
//	u16 name length, name bytes
//	u64 seq
//	i64 unix nanos
//	u32 token length, token bytes
const epochVersion = 1

func encodeEpoch(name string, seq uint64, at int64, token []byte) []byte {
	buf := make([]byte, 0, 1+2+len(name)+8+8+4+len(token))
	buf = append(buf, epochVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(at))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(token)))
	buf = append(buf, token...)
	return buf
}

func decodeEpoch(rec []byte) (name string, seq uint64, at int64, token []byte, err error) {
	bad := func(what string) (string, uint64, int64, []byte, error) {
		return "", 0, 0, nil, fmt.Errorf("statestore: bad epoch record: %s", what)
	}
	if len(rec) < 1 || rec[0] != epochVersion {
		return bad("version")
	}
	rec = rec[1:]
	if len(rec) < 2 {
		return bad("name length")
	}
	nameLen := int(binary.LittleEndian.Uint16(rec))
	rec = rec[2:]
	if len(rec) < nameLen+8+8+4 {
		return bad("short body")
	}
	name = string(rec[:nameLen])
	rec = rec[nameLen:]
	seq = binary.LittleEndian.Uint64(rec)
	at = int64(binary.LittleEndian.Uint64(rec[8:]))
	tokenLen := int(binary.LittleEndian.Uint32(rec[16:]))
	rec = rec[20:]
	if len(rec) != tokenLen {
		return bad("token length")
	}
	token = append([]byte(nil), rec...)
	if name == "" {
		return bad("empty name")
	}
	return name, seq, at, token, nil
}

// PersistEpoch appends one checkpoint epoch for the named domain and
// makes it durable per the fsync mode. seq must be monotonic per name
// (the domain runtime's epoch sequence); at is stamped by the store.
// This is the domain.Persister contract.
func (s *Store) PersistEpoch(name string, seq uint64, payload []byte) error {
	if s.closed.Load() {
		return ErrClosed
	}
	at := time.Now().UnixNano()
	rec := encodeEpoch(name, seq, at, payload)
	frame := AppendFrame(make([]byte, 0, frameHeaderSize+len(rec)), rec)

	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return ErrClosed
	}
	if _, err := s.wal.Write(frame); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("statestore: append epoch: %w", err)
	}
	s.walSize += int64(len(frame))
	if cur, ok := s.epochs[name]; ok {
		s.liveBytes -= int64(len(cur.token))
	}
	s.liveBytes += int64(len(payload))
	s.epochs[name] = epochRec{seq: seq, at: at, token: append([]byte(nil), payload...)}
	myRec := s.appended.Add(1)
	s.persisted.Add(1)
	s.persistBytes.Add(uint64(len(payload)))
	needCompact := s.cfg.CompactAfter >= 0 && s.walSize >= s.compactThresholdLocked()
	if needCompact {
		// Compaction writes base.db through a rename barrier and then
		// truncates the WAL, so it subsumes this record's durability.
		err := s.compactLocked()
		s.mu.Unlock()
		return err
	}
	if s.cfg.Fsync == FsyncAlways {
		err := s.wal.Sync()
		s.fsyncs.Add(1)
		if err == nil {
			s.advanceSynced(myRec)
		}
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("statestore: fsync: %w", err)
		}
		return nil
	}
	s.mu.Unlock()
	if s.cfg.Fsync == FsyncGroup {
		return s.syncTo(myRec)
	}
	return nil
}

// syncTo ensures every record up to and including rec is flushed: the
// group-commit path. A caller whose record was covered by a concurrent
// fsync returns without issuing one.
func (s *Store) syncTo(rec uint64) error {
	if s.synced.Load() >= rec {
		return nil
	}
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.synced.Load() >= rec {
		return nil // a sibling's sync covered us while we waited
	}
	covered := s.appended.Load()
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("statestore: fsync: %w", err)
	}
	s.fsyncs.Add(1)
	s.advanceSynced(covered)
	return nil
}

// advanceSynced raises the synced watermark monotonically.
func (s *Store) advanceSynced(to uint64) {
	for {
		cur := s.synced.Load()
		if cur >= to || s.synced.CompareAndSwap(cur, to) {
			return
		}
	}
}

// LastEpoch returns the newest durable epoch for the named domain: the
// token payload (a copy), its sequence number, and whether one exists.
// This is the domain.Persister contract.
func (s *Store) LastEpoch(name string) ([]byte, uint64, bool, error) {
	if s.closed.Load() {
		return nil, 0, false, ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.epochs[name]
	if !ok {
		return nil, 0, false, nil
	}
	return append([]byte(nil), rec.token...), rec.seq, true, nil
}

// EpochCount reports how many domains have a durable epoch.
func (s *Store) EpochCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.epochs)
}

// Names returns the domains with a durable epoch, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.epochs))
	for name := range s.epochs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Compact rewrites base.db as the newest epoch per domain and truncates
// the WAL. Crash-safe: the new base is fully written and fsynced before
// a rename swaps it in, the directory entry is fsynced before the WAL is
// truncated, so every instant of the sequence recovers to either the old
// (base + WAL) or the new (base alone) image — never less.
func (s *Store) Compact() error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	names := make([]string, 0, len(s.epochs))
	for name := range s.epochs {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf []byte
	for _, name := range names {
		rec := s.epochs[name]
		buf = AppendFrame(buf, encodeEpoch(name, rec.seq, rec.at, rec.token))
	}
	base := filepath.Join(s.cfg.Dir, baseName)
	if err := atomicWriteFile(base, buf, s.cfg.Fsync != FsyncNone); err != nil {
		return fmt.Errorf("statestore: compact: %w", err)
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("statestore: compact: truncate wal: %w", err)
	}
	s.walSize = 0
	s.compactions.Add(1)
	// Everything appended so far is now durable via the base image.
	s.advanceSynced(s.appended.Load())
	return nil
}

// atomicWriteFile writes data to path through a temp file + rename, with
// file and directory fsyncs when sync is true — the standard torn-write
// barrier.
func atomicWriteFile(path string, data []byte, sync bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after the rename succeeds
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	if sync {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		defer d.Close()
		if err := d.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// WALSize reports the current WAL length in bytes.
func (s *Store) WALSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walSize
}

// StatsSnapshot returns a point-in-time copy of the store's counters.
func (s *Store) StatsSnapshot() Stats {
	s.mu.Lock()
	epochs := len(s.epochs)
	wal := s.walSize
	s.mu.Unlock()
	return Stats{
		Epochs:       epochs,
		Persisted:    s.persisted.Load(),
		PersistBytes: s.persistBytes.Load(),
		Fsyncs:       s.fsyncs.Load(),
		Compactions:  s.compactions.Load(),
		TornRecords:  s.tornRecords.Load() + s.badEpochs.Load(),
		Spilled:      s.spilled.Load(),
		Promotions:   s.promotions.Load(),
		WALBytes:     wal,
	}
}

// RegisterMetrics exports the store's cells under the given labels.
func (s *Store) RegisterMetrics(reg telemetry.Registrar, labels telemetry.Labels) {
	reg.RegisterCounter("statestore_epochs_persisted_total", labels, &s.persisted)
	reg.RegisterCounter("statestore_persist_bytes_total", labels, &s.persistBytes)
	reg.RegisterCounter("statestore_fsyncs_total", labels, &s.fsyncs)
	reg.RegisterCounter("statestore_compactions_total", labels, &s.compactions)
	reg.RegisterCounter("statestore_torn_records_total", labels, &s.tornRecords)
	reg.RegisterCounter("statestore_flows_spilled_total", labels, &s.spilled)
	reg.RegisterCounter("statestore_flow_promotions_total", labels, &s.promotions)
	reg.RegisterGaugeFunc("statestore_wal_bytes", labels, func() float64 {
		return float64(s.WALSize())
	})
}

// Close flushes and closes the WAL and every open flow index. Further
// operations return ErrClosed.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	var first error
	s.mu.Lock()
	if s.wal != nil {
		if s.cfg.Fsync != FsyncNone {
			if err := s.wal.Sync(); err != nil && first == nil {
				first = err
			}
		}
		if err := s.wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.mu.Unlock()
	s.flowMu.Lock()
	for _, fi := range s.flows {
		if err := fi.close(); err != nil && first == nil {
			first = err
		}
	}
	s.flowMu.Unlock()
	return first
}
