package verifier_test

import (
	"fmt"

	"repro/internal/verifier"
)

// Example verifies a leaking program: the flow from the secret source to
// the public terminal is found statically, with the taint site reported.
func Example() {
	rep := verifier.Verify(`
fn main() {
    #[label(secret)]
    let key = 12345;
    let derived = key * 2;
    println(derived);
}
`)
	fmt.Println("verified:", rep.OK())
	fmt.Println("stage:", rep.Stage)
	for _, v := range rep.Violations {
		fmt.Println(v)
	}
	// Output:
	// verified: false
	// stage: information flow
	// 6:5: secret data (tainted at 4:5) flows to println with bound public
}

// Example_borrowChecker shows the ownership half of the pipeline: the
// paper's aliasing exploit never reaches the flow analysis.
func Example_borrowChecker() {
	rep := verifier.Verify(`
fn steal(v: Vec<i64>) { }
fn main() {
    let data = vec![1, 2, 3];
    steal(data);
    println(data);
}
`)
	fmt.Println("stage:", rep.Stage)
	fmt.Println(rep.Err)
	// Output:
	// stage: borrow check
	// 6:13: borrow check error: use of moved value data (value moved at 5:11)
}

// Example_clean verifies a correct program and executes it under the
// dynamic monitor as a cross-check.
func Example_clean() {
	rep := verifier.Verify(`
fn main() {
    #[label(secret)]
    let key = 7;
    let audited = declassify(key % 2, "public");
    println(audited);
}
`)
	fmt.Println("verified:", rep.OK())
	res, _ := verifier.Execute(rep)
	fmt.Print(res.Output)
	fmt.Println("dynamic leak:", res.Err != nil)
	// Output:
	// verified: true
	// 1
	// dynamic leak: false
}
