package verifier

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/minirust"
)

// The .mrs programs shipped in testdata/ are part of the repository's
// public surface (the ifc-check CLI documents them); pin their verdicts.
func testdataPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("..", "..", "testdata", name)
}

func readProgram(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(testdataPath(t, name))
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return string(b)
}

func TestTestdataPaperBuffer(t *testing.T) {
	rep := Verify(readProgram(t, "paper_buffer.mrs"))
	if rep.Stage != StageIFC || len(rep.Violations) != 1 {
		t.Fatalf("paper_buffer.mrs: %s", rep)
	}
	if rep.Violations[0].Label != "secret" {
		t.Fatalf("violation = %+v", rep.Violations[0])
	}
}

func TestTestdataAliasExploit(t *testing.T) {
	rep := Verify(readProgram(t, "alias_exploit.mrs"))
	if rep.Stage != StageBorrowCheck {
		t.Fatalf("alias_exploit.mrs stopped at %s: %s", rep.Stage, rep)
	}
	var be *minirust.BorrowError
	if !errors.As(rep.Err, &be) || !strings.Contains(be.Msg, "nonsec") {
		t.Fatalf("err = %v", rep.Err)
	}
}

func TestTestdataCleanReport(t *testing.T) {
	rep := Verify(readProgram(t, "clean_report.mrs"))
	if !rep.OK() {
		t.Fatalf("clean_report.mrs rejected: %s", rep)
	}
	if rep.Lattice.String() != "public < internal < secret" {
		t.Fatalf("lattice = %s", rep.Lattice)
	}
	res, err := Execute(rep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("dynamic run: %v", res.Err)
	}
	want := "555\n4\n"
	if res.Output != want {
		t.Fatalf("output = %q, want %q", res.Output, want)
	}
}
