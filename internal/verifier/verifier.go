// Package verifier drives the full §4 verification pipeline over a
// minirust program — the role SMACK (extended with a Rust frontend) plays
// in the paper. A program passes through four stages:
//
//  1. parse          (syntax)
//  2. type check     (types, mutability)
//  3. borrow check   (ownership — rejects the paper's line-17 exploit)
//  4. IFC analysis   (abstract interpretation over the label lattice —
//     rejects the paper's line-16 leak)
//
// The report records the stage reached, the errors or violations found,
// and analysis statistics. Verified programs can additionally be executed
// under the dynamic leak monitor as a runtime cross-check, mirroring how
// the paper "seeded a bug … SMACK discovered the injected bug, thereby
// increasing our confidence in the verification process."
package verifier

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/ifc"
	"repro/internal/minirust"
)

// Stage identifies a pipeline stage.
type Stage int

// Pipeline stages in order.
const (
	StageParse Stage = iota
	StageTypeCheck
	StageBorrowCheck
	StageIFC
	StageVerified // passed everything
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageParse:
		return "parse"
	case StageTypeCheck:
		return "type check"
	case StageBorrowCheck:
		return "borrow check"
	case StageIFC:
		return "information flow"
	case StageVerified:
		return "verified"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Report is the outcome of verifying one program.
type Report struct {
	// Stage is the furthest stage completed successfully; StageVerified
	// means the program is accepted.
	Stage Stage
	// Err is the front-end error that stopped the pipeline (parse, type,
	// or borrow stage), nil otherwise.
	Err error
	// Violations are the IFC violations (empty unless Stage == StageIFC
	// and the program leaks).
	Violations []ifc.Violation
	// Lattice is the security lattice used.
	Lattice *ifc.Lattice
	// Checked is the front-end output, available from StageBorrowCheck on.
	Checked *minirust.Checked
	// SummaryHits/Misses are the IFC compositional-analysis statistics.
	SummaryHits, SummaryMisses int
}

// OK reports whether the program verified clean.
func (r *Report) OK() bool { return r.Stage == StageVerified }

// Verify runs the pipeline on source text.
func Verify(src string) *Report {
	rep := &Report{}
	prog, err := minirust.Parse(src)
	if err != nil {
		rep.Stage = StageParse
		rep.Err = err
		return rep
	}
	checked, err := minirust.Check(prog)
	if err != nil {
		rep.Stage = StageTypeCheck
		rep.Err = err
		return rep
	}
	if err := minirust.BorrowCheck(checked); err != nil {
		rep.Stage = StageBorrowCheck
		rep.Err = err
		rep.Checked = checked
		return rep
	}
	rep.Checked = checked
	lat, err := ifc.ForProgram(prog)
	if err != nil {
		rep.Stage = StageIFC
		rep.Err = err
		return rep
	}
	rep.Lattice = lat
	res, err := ifc.Analyze(checked, lat)
	if err != nil {
		rep.Stage = StageIFC
		rep.Err = err
		return rep
	}
	rep.SummaryHits, rep.SummaryMisses = res.SummaryHits, res.SummaryMisses
	if !res.OK() {
		rep.Stage = StageIFC
		rep.Violations = res.Violations
		return rep
	}
	rep.Stage = StageVerified
	return rep
}

// Render writes a human-readable report.
func (r *Report) Render(w io.Writer) {
	if r.OK() {
		fmt.Fprintf(w, "VERIFIED: no information-flow violations (lattice: %s; summaries: %d analyzed, %d reused)\n",
			r.Lattice, r.SummaryMisses, r.SummaryHits)
		return
	}
	if r.Err != nil {
		fmt.Fprintf(w, "REJECTED at %s:\n  %v\n", r.Stage, r.Err)
		return
	}
	fmt.Fprintf(w, "REJECTED at %s: %d violation(s)\n", r.Stage, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  %s\n", v)
	}
}

// String renders the report to a string.
func (r *Report) String() string {
	var sb strings.Builder
	r.Render(&sb)
	return sb.String()
}

// RunResult is the outcome of executing a program under the dynamic
// monitor.
type RunResult struct {
	Output string
	Err    error // nil, *minirust.RuntimeError, or *minirust.LeakError
}

// Execute runs a verified (or at least front-end-clean) program under the
// dynamic leak monitor, as a runtime cross-check of the static verdict.
func Execute(rep *Report) (*RunResult, error) {
	if rep.Checked == nil {
		return nil, fmt.Errorf("verifier: program did not pass the front end: %w", rep.Err)
	}
	lat := rep.Lattice
	if lat == nil {
		var err error
		lat, err = ifc.ForProgram(rep.Checked.Prog)
		if err != nil {
			return nil, err
		}
	}
	var out strings.Builder
	interp := minirust.NewInterp(rep.Checked,
		minirust.WithOutput(&out),
		minirust.WithMonitor(lat.Monitor()))
	err := interp.Run()
	return &RunResult{Output: out.String(), Err: err}, nil
}
