package verifier

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/minirust"
)

func TestVerifyCleanProgram(t *testing.T) {
	rep := Verify(`
fn main() {
    #[label(public)]
    let x = vec![1];
    println(x);
}
`)
	if !rep.OK() || rep.Stage != StageVerified {
		t.Fatalf("report = %s", rep)
	}
	if !strings.Contains(rep.String(), "VERIFIED") {
		t.Fatalf("render = %q", rep)
	}
}

func TestVerifyStagesStopInOrder(t *testing.T) {
	cases := []struct {
		src   string
		stage Stage
	}{
		{`fn main( {`, StageParse},
		{`fn main() { let x = 1 + true; }`, StageTypeCheck},
		{`fn t(v: Vec<i64>) { } fn main() { let v = vec![1]; t(v); t(v); }`, StageBorrowCheck},
		{`fn main() { #[label(secret)] let s = 1; println(s); }`, StageIFC},
	}
	for _, c := range cases {
		rep := Verify(c.src)
		if rep.OK() {
			t.Fatalf("%q verified", c.src)
		}
		if rep.Stage != c.stage {
			t.Fatalf("%q stopped at %s, want %s", c.src, rep.Stage, c.stage)
		}
		if !strings.Contains(rep.String(), "REJECTED") {
			t.Fatalf("render = %q", rep)
		}
	}
}

func TestVerifyPaperListing(t *testing.T) {
	// Line 16 alone: IFC violation.
	rep := Verify(minirust.PaperBufferProgram(true, false))
	if rep.Stage != StageIFC || len(rep.Violations) != 1 {
		t.Fatalf("line-16 report = %s", rep)
	}
	// Line 17 alone: borrow-check rejection (the compiler catches the
	// aliasing exploit before IFC even runs).
	rep = Verify(minirust.PaperBufferProgram(false, true))
	if rep.Stage != StageBorrowCheck {
		t.Fatalf("line-17 report = %s", rep)
	}
	var be *minirust.BorrowError
	if !errors.As(rep.Err, &be) {
		t.Fatalf("err = %T", rep.Err)
	}
	// Clean listing: verified.
	rep = Verify(minirust.PaperBufferProgram(false, false))
	if !rep.OK() {
		t.Fatalf("clean listing rejected: %s", rep)
	}
}

func TestExecuteVerifiedProgram(t *testing.T) {
	rep := Verify(`
fn main() {
    println(6 * 7);
}
`)
	res, err := Execute(rep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("run err = %v", res.Err)
	}
	if strings.TrimSpace(res.Output) != "42" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestExecuteRejectsUnparsedProgram(t *testing.T) {
	rep := Verify(`fn main( {`)
	if _, err := Execute(rep); err == nil {
		t.Fatal("Execute accepted unparsed program")
	}
}

func TestExecuteMonitorAgreesWithStaticVerdict(t *testing.T) {
	// A leaking program rejected statically also leaks dynamically.
	src := `fn main() { #[label(secret)] let s = 1; println(s); }`
	rep := Verify(src)
	if rep.OK() {
		t.Fatal("leak verified clean")
	}
	res, err := Execute(rep)
	if err != nil {
		t.Fatal(err)
	}
	var leak *minirust.LeakError
	if !errors.As(res.Err, &leak) {
		t.Fatalf("dynamic run err = %v, want LeakError", res.Err)
	}
}

func TestSummariesReported(t *testing.T) {
	rep := Verify(`
fn f(x: i64) -> i64 { return x; }
fn main() {
    println(f(1), f(1), f(1));
}
`)
	if !rep.OK() {
		t.Fatalf("report = %s", rep)
	}
	if rep.SummaryHits < 2 || rep.SummaryMisses < 2 {
		t.Fatalf("summary stats = %d/%d", rep.SummaryHits, rep.SummaryMisses)
	}
}

func TestStageString(t *testing.T) {
	names := map[Stage]string{
		StageParse:       "parse",
		StageTypeCheck:   "type check",
		StageBorrowCheck: "borrow check",
		StageIFC:         "information flow",
		StageVerified:    "verified",
		Stage(42):        "Stage(42)",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}
