// Package repro is a from-scratch Go reproduction of "System Programming
// in Rust: Beyond Safety" (Balasubramanian et al., HotOS 2017).
//
// The paper's three contributions and every substrate they rest on are
// implemented under internal/: zero-copy software fault isolation over a
// runtime-enforced linear ownership model (§3), static information-flow
// control by abstract interpretation of a purpose-built mini-Rust
// language (§4), and automatic alias-preserving checkpointing (§5) —
// plus the paper-motivated extensions: session-typed channels,
// transactions/replication, rollback-recovery for middleboxes, and
// verified kernel extensions (§6).
//
// Start with README.md; DESIGN.md holds the system inventory and
// per-experiment index; EXPERIMENTS.md records paper-vs-measured for
// every table and figure. This root package carries the benchmark
// harness (bench_test.go, one benchmark per table/figure) and the
// paper-claims traceability suite (claims_test.go).
package repro
