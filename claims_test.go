// Paper-claims traceability suite: one integration test per load-bearing
// claim in the paper, each headed by the sentence it verifies. These run
// across package boundaries, complementing the per-package unit tests;
// together with bench_test.go they are the repository's reproduction
// certificate.
package repro

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/dpdk"
	"repro/internal/experiments"
	"repro/internal/extension"
	"repro/internal/firewall"
	"repro/internal/ifc"
	"repro/internal/linear"
	"repro/internal/minirust"
	"repro/internal/netbricks"
	"repro/internal/packet"
	"repro/internal/securestore"
	"repro/internal/sfi"
	"repro/internal/verifier"
)

// §3: "The Rust compiler ensures that, once a pointer has been passed
// across isolation boundaries, it can no longer be accessed by the
// sender."
func TestClaim_S3_SenderLosesAccessAcrossBoundary(t *testing.T) {
	mgr := sfi.NewManager()
	d := mgr.NewDomain("stage")
	rref, err := sfi.Export(d, &struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	batch := linear.New([]byte("line-rate payload"))
	sender := batch
	if _, err := sfi.CallMove(sfi.NewContext(), rref, "p", batch,
		func(_ *struct{}, a linear.Owned[[]byte]) (linear.Owned[[]byte], error) {
			return a, nil
		}); err != nil {
		t.Fatal(err)
	}
	if _, err := sender.Borrow(); !errors.Is(err, linear.ErrMoved) {
		t.Fatalf("sender retained access: %v", err)
	}
}

// §3: "Our SFI implementation introduces the overhead of indirect
// invocation via the proxy … and has zero runtime overhead during normal
// execution" — i.e. no per-byte or per-dereference cost, only a
// per-invocation constant. We verify the structural half: crossing the
// boundary moves zero payload bytes.
func TestClaim_S3_ZeroCopyCrossing(t *testing.T) {
	mgr := sfi.NewManager()
	d := mgr.NewDomain("stage")
	rref, err := sfi.Export[netbricks.Operator](d, netbricks.NullFilter{})
	if err != nil {
		t.Fatal(err)
	}
	port := dpdk.NewPort(dpdk.Config{PoolSize: 16})
	pkts := make([]*packet.Packet, 4)
	n := port.RxBurst(pkts)
	batch := &netbricks.Batch{Pkts: pkts[:n]}
	before := make([]*packet.Packet, n)
	copy(before, batch.Pkts)

	owned := linear.New(batch)
	out, err := sfi.CallMove(sfi.NewContext(), rref, "p", owned,
		func(op netbricks.Operator, a linear.Owned[*netbricks.Batch]) (linear.Owned[*netbricks.Batch], error) {
			_ = a.With(func(b *netbricks.Batch) {
				for i, p := range b.Pkts {
					if p != before[i] {
						t.Errorf("packet %d copied crossing the boundary", i)
					}
				}
			})
			return a, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	final, err := out.Into()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range final.Pkts {
		if p != before[i] {
			t.Fatalf("packet %d copied on return", i)
		}
	}
	port.Free(final.Pkts)
}

// §3: "By clearing the reference table one can automatically deallocate
// all memory and resources owned by the domain" + "future attempts to
// invoke the rref will fail to upgrade the weak pointer and will return
// an error."
func TestClaim_S3_TeardownFailsClosed(t *testing.T) {
	mgr := sfi.NewManager()
	d := mgr.NewDomain("svc")
	var refs []*sfi.RRef[*bytes.Buffer]
	for i := 0; i < 8; i++ {
		r, err := sfi.Export(d, bytes.NewBufferString("x"))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	ctx := sfi.NewContext()
	_ = refs[0].Call(ctx, "boom", func(*bytes.Buffer) error { panic("fault") })
	if d.TableSize() != 0 {
		t.Fatalf("table not cleared: %d", d.TableSize())
	}
	for i, r := range refs {
		if err := r.Call(ctx, "use", func(*bytes.Buffer) error { return nil }); err == nil {
			t.Fatalf("rref %d usable after teardown", i)
		}
	}
}

// §3: "The recovery process can re-populate the reference table, thus
// making the failure transparent to clients of the domain."
func TestClaim_S3_RecoveryTransparent(t *testing.T) {
	mgr := sfi.NewManager()
	d := mgr.NewDomain("svc")
	rref, err := sfi.Export(d, bytes.NewBufferString("gen-1"))
	if err != nil {
		t.Fatal(err)
	}
	slot := rref.Slot()
	d.SetRecovery(func(d *sfi.Domain) error {
		return sfi.ExportAt(d, slot, bytes.NewBufferString("gen-2"))
	})
	ctx := sfi.NewContext()
	_ = rref.Call(ctx, "boom", func(*bytes.Buffer) error { panic("fault") })
	if err := mgr.Recover(d); err != nil {
		t.Fatal(err)
	}
	// The *same client-held rref* works again without re-acquisition.
	got, err := sfi.CallResult(ctx, rref, "read", func(b *bytes.Buffer) (string, error) {
		return b.String(), nil
	})
	if err != nil {
		t.Fatalf("client had to do something special: %v", err)
	}
	if got != "gen-2" {
		t.Fatalf("recovered state = %q", got)
	}
}

// §3: "NetBricks takes advantage of linear types to ensure that only one
// pipeline stage can access the batch at any time."
func TestClaim_S3_SingleStageAccess(t *testing.T) {
	pl := netbricks.NewPipeline(netbricks.NullFilter{}, netbricks.NullFilter{})
	b := linear.New(&netbricks.Batch{})
	prev := b
	out, err := pl.Process(b)
	if err != nil {
		t.Fatal(err)
	}
	if prev.Valid() {
		t.Fatal("producer still holds the batch while the pipeline owns it")
	}
	if !out.Valid() {
		t.Fatal("pipeline did not return ownership")
	}
}

// §4: "line 17 is rejected by the compiler, as it attempts to access the
// nonsec variable, whose ownership was transferred to the append method
// in line 14."
func TestClaim_S4_AliasExploitRejectedByOwnership(t *testing.T) {
	rep := verifier.Verify(minirust.PaperBufferProgram(false, true))
	if rep.Stage != verifier.StageBorrowCheck {
		t.Fatalf("stopped at %s, want borrow check", rep.Stage)
	}
	var be *minirust.BorrowError
	if !errors.As(rep.Err, &be) || !strings.Contains(be.Msg, "nonsec") {
		t.Fatalf("err = %v", rep.Err)
	}
}

// §4: "in line 15, the content of the buffer is tainted as secret, which
// triggers an error in line 16."
func TestClaim_S4_DirectLeakCaughtStatically(t *testing.T) {
	rep := verifier.Verify(minirust.PaperBufferProgram(true, false))
	if rep.Stage != verifier.StageIFC || len(rep.Violations) != 1 {
		t.Fatalf("report: %s", rep)
	}
	v := rep.Violations[0]
	if v.Label != "secret" || v.Bound != "public" || v.Sink != "println" {
		t.Fatalf("violation = %+v", v)
	}
}

// §4: "An auxiliary program counter variable is introduced to track the
// flow of information via branching on labeled variables."
func TestClaim_S4_ImplicitFlowsTracked(t *testing.T) {
	rep := verifier.Verify(`
fn main() {
    #[label(secret)]
    let bit = 1;
    let mut mirror = 0;
    if bit == 1 { mirror = 1; } else { mirror = 0; }
    println(mirror);
}
`)
	if rep.OK() {
		t.Fatal("pc-mediated flow missed")
	}
}

// §4: "As a sanity check, we seeded a bug into checking of security
// access in the implementation. SMACK discovered the injected bug."
func TestClaim_S4_SeededBugsDiscovered(t *testing.T) {
	for _, v := range securestore.Variants {
		rep := securestore.VerifyVariant(v)
		if v.Buggy() == rep.OK() {
			t.Fatalf("variant %s: buggy=%v but verified=%v", v, v.Buggy(), rep.OK())
		}
	}
}

// §4: "the effect of every function on security labels is confined to its
// input arguments and can be summarized by analyzing the code of the
// function in isolation from the rest of the program."
func TestClaim_S4_CompositionalSummaries(t *testing.T) {
	prog, err := minirust.Parse(`
fn helper(x: i64) -> i64 { return x + 1; }
fn main() {
    let a = helper(1);
    let b = helper(1);
    let c = helper(1);
    println(a + b + c);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := minirust.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := minirust.BorrowCheck(checked); err != nil {
		t.Fatal(err)
	}
	res, err := ifc.Analyze(checked, ifc.Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.SummaryHits != 2 {
		t.Fatalf("hits = %d: helper body not reused", res.SummaryHits)
	}
}

// §5: "Multiple leaves of the trie can point to the same rule …
// potentially leading to redundant copies of the rule" (Figure 3b) vs.
// the library "checkpoints objects with internal aliases correctly and
// efficiently."
func TestClaim_S5_Figure3CopyCounts(t *testing.T) {
	rows, err := experiments.Figure3(25, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.Mode {
		case checkpoint.RcAware:
			if r.CopiesMade != 25 {
				t.Fatalf("rc-aware copies = %d, want 25", r.CopiesMade)
			}
		case checkpoint.Naive:
			if r.CopiesMade != 100 {
				t.Fatalf("naive copies = %d, want 100 (duplication)", r.CopiesMade)
			}
		}
	}
}

// §5: "Aliasing, when present, is explicit in object's type signature" —
// so the restored graph is not merely structurally shared but
// behaviourally aliased.
func TestClaim_S5_RestoredAliasesBehave(t *testing.T) {
	db := firewall.NewDB(firewall.Deny)
	h, err := db.AddRule(packet.Addr(10, 0, 0, 0), 8, firewall.Rule{ID: 1, Action: firewall.Allow})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachRule(packet.Addr(20, 0, 0, 0), 8, h); err != nil {
		t.Fatal(err)
	}
	snap, err := db.Checkpoint(checkpoint.NewEngine(checkpoint.RcAware))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := firewall.RestoreDB(snap)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the rule through the 10/8 leaf; the 20/8 leaf must see it.
	var flipped bool
	restored.Rules.Walk(func(_ packet.IPv4, _ int, v *[]firewall.SharedRule) bool {
		for _, sr := range *v {
			if !flipped && sr.Get().ID == 1 {
				sr.Set(firewall.Rule{ID: 1, Action: firewall.Deny})
				flipped = true
			}
		}
		return true
	})
	act, _ := restored.Match(packet.FiveTuple{DstIP: packet.Addr(20, 1, 1, 1), Proto: packet.ProtoTCP})
	if act != firewall.Deny {
		t.Fatal("restored aliases not behaviourally shared")
	}
}

// §6: "This has numerous applications in systems, ranging from verified
// kernel extensions …" — composed from all three pillars.
func TestClaim_S6_VerifiedKernelExtension(t *testing.T) {
	// An exfiltrating extension cannot be loaded.
	_, _, err := extension.Load("spy", `
labels public < secret;
fn filter(src: i64, dst: i64, sport: i64, dport: i64, proto: i64) -> bool {
    println(dst);
    return true;
}
`)
	if !errors.Is(err, extension.ErrRejected) {
		t.Fatalf("spy loaded: %v", err)
	}
	// A verified one runs, and its runtime crash is contained.
	ext, _, err := extension.Load("ok", `
labels public < secret;
fn filter(src: i64, dst: i64, sport: i64, dport: i64, proto: i64) -> bool {
    return dport / sport >= 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	mgr := sfi.NewManager()
	d := mgr.NewDomain("ext")
	rref, err := sfi.Export[netbricks.Operator](d, extension.Operator{Ext: ext})
	if err != nil {
		t.Fatal(err)
	}
	spec := dpdk.DefaultSpec()
	spec.Tuple.Proto = packet.ProtoTCP
	spec.Tuple.SrcPort = 0 // poison
	frame, _ := packet.Build(nil, spec)
	b := &netbricks.Batch{Pkts: []*packet.Packet{{Data: frame}}}
	err = rref.Call(sfi.NewContext(), "p", func(op netbricks.Operator) error {
		return op.ProcessBatch(b)
	})
	if !errors.Is(err, sfi.ErrDomainFailed) {
		t.Fatalf("extension crash not contained: %v", err)
	}
}
