GO ?= go

# Packages whose concurrency is load-bearing: the sharded runtime, the
# pool caches under it, and the linear-ownership cells that make it safe.
RACE_PKGS = ./internal/netbricks ./internal/mempool ./internal/linear

.PHONY: check build test race race-all vet fuzz bench

## check: the PR gate — vet, build, full tests, race tier.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector pass over the concurrency-bearing packages.
race:
	$(GO) test -race $(RACE_PKGS)

## race-all: race-detector pass over the whole module (slower).
race-all:
	$(GO) test -race ./...

## fuzz: short fuzz smoke on the packet parser (seed corpus + 10s).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParsePacket -fuzztime=10s ./internal/packet

## bench: the full testing.B harness.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem .
