GO ?= go

# Packages whose concurrency is load-bearing: the sharded runtime, the
# supervised protection-domain runtime and its chaos harness, the pool
# caches under them, and the linear-ownership cells that make it safe.
RACE_PKGS = ./internal/netbricks ./internal/mempool ./internal/linear ./internal/domain/...

# Per-benchmark time for the JSON bench run; raise for stabler numbers.
BENCHTIME ?= 0.5s

.PHONY: check build test race race-all vet fuzz bench bench-all

## check: the PR gate — vet, build, full tests, race tier.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector pass over the concurrency-bearing packages.
race:
	$(GO) test -race $(RACE_PKGS)

## race-all: race-detector pass over the whole module (slower).
race-all:
	$(GO) test -race ./...

## fuzz: short fuzz smoke on the packet parser and the mailbox
## ownership boundary (seed corpus + 10s each).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParsePacket -fuzztime=10s ./internal/packet
	$(GO) test -run='^$$' -fuzz=FuzzMailboxOwnership -fuzztime=10s ./internal/domain

## bench: the pipeline throughput benches (direct/isolated/sharded/
## supervised, steady and faulting), recorded machine-readably in
## BENCH_pipeline.json so the perf trajectory is diffable across PRs.
bench:
	$(GO) test -run='^$$' -bench='Figure2|Sharded|Supervised|Recovery' -benchmem -benchtime=$(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -o BENCH_pipeline.json

## bench-all: the full testing.B harness (human-readable only).
bench-all:
	$(GO) test -run='^$$' -bench=. -benchmem .
