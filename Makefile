GO ?= go

# Packages whose concurrency is load-bearing: the sharded runtime, the
# supervised protection-domain runtime and its chaos harness, the pool
# caches under them, the linear-ownership cells that make it safe, the
# telemetry core every one of them records into, and both port
# implementations (the simulated NIC's steered distributor and the
# socket-backed port's receive loop).
RACE_PKGS = ./internal/netbricks ./internal/mempool ./internal/linear ./internal/domain/... ./internal/telemetry ./internal/telemetry/trace ./internal/netport ./internal/dpdk ./internal/checkpoint ./internal/session ./internal/statestore

# Per-benchmark time for the JSON bench run; raise for stabler numbers.
BENCHTIME ?= 0.5s

# Floor for the loopback throughput gate: the recorded batched-syscall
# number (~400k pps sustained through the full pipeline on this class of
# single-core machine) minus 20% of headroom for scheduler noise.
NETPORT_PPS_FLOOR ?= 320000

# Ceiling for the durable-checkpoint overhead gate: a group-committed
# epoch to disk measured ~1.2x the in-memory checkpoint+encode on this
# class of machine; 4x leaves room for slow CI disks without letting the
# WAL become a multiple-of-RAM cliff.
STATESTORE_OVERHEAD_MAX ?= 4.0

# Ceilings for the pipeline allocation gates. The recorded numbers after
# the zero-alloc fix are ~800 allocs/op for the checkpointed pipeline at
# epoch=off (all of it per-Run cold start: supervisor construction and
# first-sight flows) and ~650 for the supervised steady run; the
# regression this gate exists to catch was 168k+. 4000 absorbs iteration-
# count amortisation noise while tripping at a tiny fraction of the bug.
# The epoch=10ms case additionally pays ~1 alloc per live flow per
# checkpoint epoch (sanctioned; see DESIGN.md), recorded ~8-9k.
PIPELINE_ALLOCS_MAX ?= 4000
PIPELINE_EPOCH_ALLOCS_MAX ?= 20000

.PHONY: check build test test-e2e test-recovery race race-all vet guard-atomics alloc-gate fuzz bench bench-all bench-gate

## check: the PR gate — vet, build, full tests, race tier, e2e tier,
## kill -9 recovery tier, atomics guard, zero-allocation gate.
check: vet build test race test-e2e test-recovery guard-atomics alloc-gate

## guard-atomics: hot-path counters must be typed atomic cells
## (atomic.Uint64 / telemetry.Counter), never raw integers passed to the
## legacy atomic.AddUint64-style functions — typed cells cannot be read
## non-atomically by accident and plug into the telemetry registry.
guard-atomics:
	@matches=$$(grep -rnE 'atomic\.(Add|Load|Store|Swap|CompareAndSwap)(Int|Uint)(32|64)\(' \
		--include='*.go' --exclude='*_test.go' cmd internal 2>/dev/null || true); \
	if [ -n "$$matches" ]; then \
		echo "$$matches"; \
		echo "guard-atomics: raw-integer atomic calls found; use atomic.Int64/atomic.Uint64 or telemetry cells"; \
		exit 1; \
	fi

## alloc-gate: the tracer's record paths must stay allocation-free —
## the untraced path (sampler miss + unarmed stamp, what every packet
## pays) and the armed path (arm, stamp, complete into the ring). A
## -benchmem run with a benchgate allocs/op ceiling of 0 enforces both.
## The second half gates the full pipeline: benchgate ceilings on the
## checkpointed and supervised pipeline benches catch any return of the
## per-packet allocation regression (168k allocs/op before the fix,
## ~800 after — all cold start). benchgate echoes stdin unchanged but a
## mid-pipe failure would be masked without pipefail, so the output is
## captured once and each gate reads the file.
alloc-gate:
	$(GO) test -run='^$$' -bench='TraceRecordPath' -benchmem -benchtime=10000x ./internal/telemetry/trace \
		| $(GO) run ./cmd/benchgate -bench BenchmarkTraceRecordPathUntraced -metric allocs/op -max 0
	$(GO) test -run='^$$' -bench='TraceRecordPathArmed' -benchmem -benchtime=10000x ./internal/telemetry/trace \
		| $(GO) run ./cmd/benchgate -bench BenchmarkTraceRecordPathArmed -metric allocs/op -max 0
	@set -e; out=$$(mktemp); trap "rm -f $$out" EXIT; \
	$(GO) test -run='^$$' -bench='CheckpointedPipeline|SupervisedPipeline/steady$$' -benchmem -benchtime=5x . | tee $$out; \
	$(GO) run ./cmd/benchgate -bench BenchmarkCheckpointedPipeline/epoch=off -metric allocs/op -max $(PIPELINE_ALLOCS_MAX) < $$out > /dev/null; \
	$(GO) run ./cmd/benchgate -bench BenchmarkCheckpointedPipeline/epoch=10ms -metric allocs/op -max $(PIPELINE_EPOCH_ALLOCS_MAX) < $$out > /dev/null; \
	$(GO) run ./cmd/benchgate -bench BenchmarkCheckpointedPipeline/epoch=100ms -metric allocs/op -max $(PIPELINE_ALLOCS_MAX) < $$out > /dev/null; \
	$(GO) run ./cmd/benchgate -bench BenchmarkSupervisedPipeline/steady -metric allocs/op -max $(PIPELINE_ALLOCS_MAX) < $$out > /dev/null

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## test-e2e: the loopback end-to-end tier — real UDP sockets, pktgen,
## and the supervised pipeline, under a generous timeout. These tests
## skip themselves under -short, so a plain `go test -short ./...` stays
## socket-free.
test-e2e:
	$(GO) test -timeout 120s -run 'TestE2E|TestChaosSupervisedPipeline' ./internal/netport ./internal/netbricks

## test-recovery: the durable-state acceptance tier — a supervised
## pipeline persisting checkpoint epochs over live loopback traffic is
## killed with SIGKILL mid-run; a cold reopen of its state directory
## must restore the exact fault-free oracle with zero cold starts.
test-recovery:
	$(GO) test -timeout 180s -run 'TestRecoveryKill9' -count=1 ./internal/statestore

## race: race-detector pass over the concurrency-bearing packages.
race:
	$(GO) test -race $(RACE_PKGS)

## race-all: race-detector pass over the whole module (slower).
race-all:
	$(GO) test -race ./...

## fuzz: short fuzz smoke on the packet parser, the mailbox ownership
## boundary, the netport decoder, and the checkpoint round-trip
## (seed corpus + 10s each).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParsePacket -fuzztime=10s ./internal/packet
	$(GO) test -run='^$$' -fuzz=FuzzMailboxOwnership -fuzztime=10s ./internal/domain
	$(GO) test -run='^$$' -fuzz=FuzzNetportDecode -fuzztime=10s ./internal/netport
	$(GO) test -run='^$$' -fuzz=FuzzCheckpointRestore -fuzztime=10s ./internal/checkpoint
	$(GO) test -run='^$$' -fuzz=FuzzTraceSpanEncode -fuzztime=10s ./internal/telemetry/trace
	$(GO) test -run='^$$' -fuzz=FuzzWALReplay -fuzztime=10s ./internal/statestore

## bench: the pipeline throughput benches (direct/isolated/sharded/
## supervised, steady and faulting), recorded machine-readably in
## BENCH_pipeline.json so the perf trajectory is diffable across PRs.
bench:
	$(GO) test -run='^$$' -bench='Figure2|Sharded|Supervised|Recovery' -benchmem -benchtime=$(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -o BENCH_pipeline.json
	$(GO) test -run='^$$' -bench='Telemetry' -benchmem -benchtime=$(BENCHTIME) ./internal/telemetry \
		| $(GO) run ./cmd/benchjson -out BENCH_telemetry.json
	$(GO) test -run='^$$' -bench='NetportLoopback' -benchtime=$(BENCHTIME) ./internal/netport \
		| $(GO) run ./cmd/benchjson -out BENCH_netport.json
	$(GO) test -run='^$$' -bench='CheckpointedPipeline|CheckpointRestoreSession' -benchmem -benchtime=$(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -out BENCH_checkpoint.json
	$(GO) test -run='^$$' -bench='TraceRecordPath|NetportLoopbackTraced' -benchmem -benchtime=$(BENCHTIME) ./internal/telemetry/trace ./internal/netport \
		| $(GO) run ./cmd/benchjson -out BENCH_trace.json
	$(GO) test -run='^$$' -bench='CheckpointEpoch|FlowIndex' -benchmem -benchtime=$(BENCHTIME) ./internal/statestore \
		| $(GO) run ./cmd/benchjson -out BENCH_statestore.json

## bench-all: the full testing.B harness (human-readable only).
bench-all:
	$(GO) test -run='^$$' -bench=. -benchmem .

## bench-gate: perf regression gates — the loopback throughput bench
## must sustain NETPORT_PPS_FLOOR, and the traced variant (sampling at
## 1/1024) must sustain at least 98% of the untraced run's pps from the
## same bench invocation.
bench-gate:
	$(GO) test -run='^$$' -bench='NetportLoopback$$' -benchtime=2s -count=1 ./internal/netport \
		| $(GO) run ./cmd/benchgate -bench BenchmarkNetportLoopback -metric pps -min $(NETPORT_PPS_FLOOR)
	$(GO) test -run='^$$' -bench='NetportLoopback(Traced)?$$' -benchtime=2s -count=1 ./internal/netport \
		| $(GO) run ./cmd/benchgate -bench BenchmarkNetportLoopbackTraced -metric pps \
			-baseline BenchmarkNetportLoopback -min-frac 0.98
	$(GO) test -run='^$$' -bench='CheckpointEpochDisk$$' -benchtime=2s -count=1 ./internal/statestore \
		| $(GO) run ./cmd/benchgate -bench BenchmarkCheckpointEpochDisk -metric x-ram -max $(STATESTORE_OVERHEAD_MAX)
