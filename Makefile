GO ?= go

# Packages whose concurrency is load-bearing: the sharded runtime, the
# supervised protection-domain runtime and its chaos harness, the pool
# caches under them, the linear-ownership cells that make it safe, and
# the telemetry core every one of them records into.
RACE_PKGS = ./internal/netbricks ./internal/mempool ./internal/linear ./internal/domain/... ./internal/telemetry

# Per-benchmark time for the JSON bench run; raise for stabler numbers.
BENCHTIME ?= 0.5s

.PHONY: check build test race race-all vet guard-atomics fuzz bench bench-all

## check: the PR gate — vet, build, full tests, race tier, atomics guard.
check: vet build test race guard-atomics

## guard-atomics: hot-path counters must be typed atomic cells
## (atomic.Uint64 / telemetry.Counter), never raw integers passed to the
## legacy atomic.AddUint64-style functions — typed cells cannot be read
## non-atomically by accident and plug into the telemetry registry.
guard-atomics:
	@matches=$$(grep -rnE 'atomic\.(Add|Load|Store|Swap|CompareAndSwap)(Int|Uint)(32|64)\(' \
		--include='*.go' --exclude='*_test.go' cmd internal 2>/dev/null || true); \
	if [ -n "$$matches" ]; then \
		echo "$$matches"; \
		echo "guard-atomics: raw-integer atomic calls found; use atomic.Int64/atomic.Uint64 or telemetry cells"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector pass over the concurrency-bearing packages.
race:
	$(GO) test -race $(RACE_PKGS)

## race-all: race-detector pass over the whole module (slower).
race-all:
	$(GO) test -race ./...

## fuzz: short fuzz smoke on the packet parser and the mailbox
## ownership boundary (seed corpus + 10s each).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParsePacket -fuzztime=10s ./internal/packet
	$(GO) test -run='^$$' -fuzz=FuzzMailboxOwnership -fuzztime=10s ./internal/domain

## bench: the pipeline throughput benches (direct/isolated/sharded/
## supervised, steady and faulting), recorded machine-readably in
## BENCH_pipeline.json so the perf trajectory is diffable across PRs.
bench:
	$(GO) test -run='^$$' -bench='Figure2|Sharded|Supervised|Recovery' -benchmem -benchtime=$(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -o BENCH_pipeline.json
	$(GO) test -run='^$$' -bench='Telemetry' -benchmem -benchtime=$(BENCHTIME) ./internal/telemetry \
		| $(GO) run ./cmd/benchjson -out BENCH_telemetry.json

## bench-all: the full testing.B harness (human-readable only).
bench-all:
	$(GO) test -run='^$$' -bench=. -benchmem .
