// Rollback-middlebox: the §5 "applications" layer in action. A stateful
// monitoring NF (per-flow packet counter) runs inside a protection
// domain; its state graph is checkpointed automatically every few
// batches. When a fault is injected, §3 recovery restores the last
// snapshot instead of clean state — rollback-recovery for middleboxes
// (Sherry et al.) with bounded state loss. The same snapshots feed a
// standby replica via the txn layer.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/checkpoint"
	"repro/internal/dpdk"
	"repro/internal/netbricks"
	"repro/internal/packet"
	"repro/internal/rollback"
	"repro/internal/sfi"
	"repro/internal/txn"
)

// monitor counts packets per flow; Total is shared through Rc so restores
// must preserve aliasing.
type monitor struct {
	Counts  map[packet.FiveTuple]int
	Total   checkpoint.Rc[int]
	panicOn int
	seen    int
}

type monitorState struct {
	Counts map[packet.FiveTuple]int
	Total  checkpoint.Rc[int]
}

func newMonitor() *monitor {
	return &monitor{Counts: make(map[packet.FiveTuple]int), Total: checkpoint.NewRc(0)}
}

func (m *monitor) Name() string { return "monitor" }

func (m *monitor) ProcessBatch(b *netbricks.Batch) error {
	m.seen++
	if m.panicOn != 0 && m.seen == m.panicOn {
		panic("injected monitor fault")
	}
	for _, p := range b.Pkts {
		if !p.Parsed() {
			if err := p.Parse(); err != nil {
				continue
			}
		}
		m.Counts[p.Tuple()]++
		m.Total.Set(m.Total.Get() + 1)
	}
	return nil
}

func (m *monitor) ExportState() any {
	return &monitorState{Counts: m.Counts, Total: m.Total}
}

func (m *monitor) ImportState(state any) error {
	st, ok := state.(*monitorState)
	if !ok {
		return fmt.Errorf("bad state %T", state)
	}
	m.Counts, m.Total = st.Counts, st.Total
	return nil
}

func main() {
	log.SetFlags(0)

	// The first operator instance crashes on its 6th batch; replacements
	// are healthy.
	first := true
	factory := func() rollback.StatefulOperator {
		m := newMonitor()
		if first {
			m.panicOn = 6
			first = false
		}
		return m
	}
	guard, err := rollback.NewGuard(factory, 3) // checkpoint every 3 batches
	if err != nil {
		log.Fatal(err)
	}
	mgr := sfi.NewManager()
	stage, err := rollback.NewGuardedStage(mgr, "monitor", guard)
	if err != nil {
		log.Fatal(err)
	}

	port := dpdk.NewPort(dpdk.Config{
		PoolSize: 64,
		Gen:      &dpdk.UniformFlows{Base: dpdk.DefaultSpec(), Flows: 6},
	})
	ctx := sfi.NewContext()
	pkts := make([]*packet.Packet, 4)
	for i := 1; i <= 12; i++ {
		n := port.RxBurst(pkts)
		batch := &netbricks.Batch{Pkts: pkts[:n]}
		err := stage.RRef.Call(ctx, "process", func(op netbricks.Operator) error {
			return op.ProcessBatch(batch)
		})
		if err != nil {
			if !errors.Is(err, sfi.ErrDomainFailed) {
				log.Fatal(err)
			}
			fmt.Printf("batch %2d: FAULT contained in domain %q; rolling back to last checkpoint\n",
				i, stage.Domain.Name())
			if err := mgr.Recover(stage.Domain); err != nil {
				log.Fatal(err)
			}
		}
		port.Free(pkts[:n])
	}
	processed, ckpts, restores := guard.Stats()
	fmt.Printf("\nguard: %d batches counted, %d checkpoints, %d rollback-restores\n",
		processed, ckpts, restores)
	fmt.Println("state loss was bounded by the checkpoint interval (3 batches),")
	fmt.Println("not a clean-slate reset — the §5 automation applied to §3 recovery.")

	// Replication on the same machinery: ship the NF state to a standby.
	store, err := txn.NewStore(guard.State(), 0)
	if err != nil {
		log.Fatal(err)
	}
	standby := txn.NewReplica[any]()
	if err := standby.SyncFrom(store); err != nil {
		log.Fatal(err)
	}
	standby.View(func(s any) {
		st := s.(*monitorState)
		fmt.Printf("\nstandby replica synced: %d flows, %d packets total\n",
			len(st.Counts), st.Total.Get())
	})
}
