// Verified-extension: the paper's §6 future-work vision ("verified
// kernel extensions") assembled from the three pillars. An untrusted
// packet filter written in minirust is (1) statically verified — an
// exfiltrating variant is rejected at load with the traffic fields
// labeled secret; (2) loaded into a protection domain — a variant with a
// value-dependent crash faults the domain on a poisoned packet without
// taking the pipeline down; and (3) recovered automatically.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/dpdk"
	"repro/internal/extension"
	"repro/internal/netbricks"
	"repro/internal/packet"
	"repro/internal/sfi"
)

const trustedFilter = `
labels public < secret;
// Keep TCP traffic to privileged ports only.
fn filter(src: i64, dst: i64, sport: i64, dport: i64, proto: i64) -> bool {
    if proto == 6 {
        return dport < 1024;
    }
    return false;
}
`

const exfiltratingFilter = `
labels public < secret;
fn filter(src: i64, dst: i64, sport: i64, dport: i64, proto: i64) -> bool {
    println(src, dst, dport);   // ships traffic metadata to the terminal
    return true;
}
`

const crashingFilter = `
labels public < secret;
fn filter(src: i64, dst: i64, sport: i64, dport: i64, proto: i64) -> bool {
    let ratio = dport / sport;  // sport 0 crashes the extension
    return ratio >= 0;
}
`

func main() {
	log.SetFlags(0)

	fmt.Println("== loading the exfiltrating extension ==")
	_, rep, err := extension.Load("spy", exfiltratingFilter)
	if !errors.Is(err, extension.ErrRejected) {
		log.Fatalf("BUG: spy extension not rejected: %v", err)
	}
	fmt.Printf("rejected at %s stage:\n", rep.Stage)
	for _, v := range rep.Violations {
		fmt.Printf("  %s\n", v)
	}

	fmt.Println("\n== loading the trusted extension ==")
	ext, rep, err := extension.Load("web-only", trustedFilter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: %d functions analyzed, %d summaries reused\n",
		rep.SummaryMisses, rep.SummaryHits)

	// Run it over traffic in its own protection domain.
	crashy, _, err := extension.Load("crashy", crashingFilter)
	if err != nil {
		log.Fatal(err)
	}
	mgr := sfi.NewManager()
	stages := []netbricks.Operator{
		netbricks.Parse{},
		extension.Operator{Ext: ext},
		extension.Operator{Ext: crashy},
	}
	factories := []func() netbricks.Operator{
		nil, nil,
		func() netbricks.Operator {
			fresh, _, err := extension.Load("crashy", crashingFilter)
			if err != nil {
				panic(err)
			}
			return extension.Operator{Ext: fresh}
		},
	}
	pipeline, err := netbricks.NewIsolatedPipeline(mgr, stages, factories)
	if err != nil {
		log.Fatal(err)
	}

	// Traffic: TCP to port 80, mostly sane source ports, one poisoned
	// packet with source port 0 that crashes the second extension.
	spec := dpdk.DefaultSpec()
	spec.Tuple.Proto = packet.ProtoTCP
	spec.Tuple.DstPort = 80
	gen := &poisonGen{base: spec, poisonAt: 7}
	port := dpdk.NewPort(dpdk.Config{PoolSize: 64, Gen: gen})

	runner := netbricks.Runner{Port: port, BatchSize: 4, Isolated: pipeline, AutoRecover: true}
	stats, err := runner.Run(sfi.NewContext(), 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== pipeline run ==\nbatches=%d packets=%d drops=%d faults=%d recovered=%d\n",
		stats.Batches, stats.Packets, stats.Drops, stats.Faults, stats.Recovered)
	fmt.Printf("trusted extension evaluated %d packets, kept %d\n", ext.Evaluated, ext.Kept)
	fmt.Println("\nthe crashing extension faulted its own domain on the poisoned")
	fmt.Println("packet; the pipeline recovered it and kept forwarding — kernel")
	fmt.Println("extension crashes without kernel crashes.")
}

// poisonGen emits the base flow but poisons one packet with sport 0.
type poisonGen struct {
	base     packet.BuildSpec
	count    int
	poisonAt int
}

func (g *poisonGen) NextSpec(spec *packet.BuildSpec) {
	*spec = g.base
	g.count++
	spec.Tuple.SrcPort = uint16(40000 + g.count)
	if g.count == g.poisonAt {
		spec.Tuple.SrcPort = 0
	}
}
