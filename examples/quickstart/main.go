// Quickstart: the paper's §3 listing in twenty lines — create a
// protection domain, export an object into it as a remote reference,
// invoke it, revoke it, and watch the call fail closed.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/sfi"
)

// counter is the object that will live inside the protection domain.
type counter struct{ n int }

func main() {
	log.SetFlags(0)

	// Inside the domain manager: create a PD and an object inside it.
	mgr := sfi.NewManager()
	d := mgr.NewDomain("svc")
	rref, err := sfi.Export(d, &counter{})
	if err != nil {
		log.Fatal(err)
	}

	// Invoke the rref from another PD (here, the root domain). This is
	// the paper's `match rref.method1() { Ok(ret) => ..., Err(_) => ... }`.
	ctx := sfi.NewContext()
	for i := 0; i < 3; i++ {
		ret, err := sfi.CallResult(ctx, rref, "incr", func(c *counter) (int, error) {
			c.n++
			return c.n, nil
		})
		if err != nil {
			fmt.Println("incr() failed:", err)
			continue
		}
		fmt.Println("Result:", ret)
	}

	// Revoke the reference: the owner removes the proxy from its
	// reference table, and every outstanding rref fails closed.
	d.Revoke(rref.Slot())
	err = rref.Call(ctx, "incr", func(c *counter) error { c.n++; return nil })
	switch {
	case errors.Is(err, sfi.ErrRevoked):
		fmt.Println("after revocation: incr() failed with ErrRevoked (as designed)")
	case err == nil:
		log.Fatal("BUG: call succeeded after revocation")
	default:
		log.Fatalf("unexpected error: %v", err)
	}
}
