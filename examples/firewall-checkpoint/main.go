// Firewall-checkpoint: Figure 3 as a runnable scenario. A firewall rule
// database indexed by a trie, with two leaves sharing rule 1 (Figure 3a),
// is checkpointed three ways:
//
//   - naively, producing the duplicate copies of Figure 3b;
//   - with the paper's Rc-aware engine, which copies each shared rule
//     exactly once and preserves the alias structure; and
//   - with the conventional visited-set workaround, which preserves
//     sharing but pays a table probe per pointer.
//
// The restored databases are then probed to show the semantic difference:
// updating the shared rule through one leaf is visible through the other
// only when sharing survived.
package main

import (
	"fmt"
	"log"

	"repro/internal/checkpoint"
	"repro/internal/firewall"
	"repro/internal/packet"
)

func buildFigure3aDB() (*firewall.DB, error) {
	db := firewall.NewDB(firewall.Deny)
	// rule 1, reachable from two trie leaves (10.0/16 and 10.5.0/24).
	rule1, err := db.AddRule(packet.Addr(10, 0, 0, 0), 16, firewall.Rule{ID: 1, Action: firewall.Allow, Comment: "rule 1"})
	if err != nil {
		return nil, err
	}
	if err := db.AttachRule(packet.Addr(10, 5, 0, 0), 24, rule1); err != nil {
		return nil, err
	}
	// rule 2 under its own prefix.
	if _, err := db.AddRule(packet.Addr(192, 168, 0, 0), 16, firewall.Rule{ID: 2, Action: firewall.Allow, Comment: "rule 2"}); err != nil {
		return nil, err
	}
	return db, nil
}

func main() {
	log.SetFlags(0)

	db, err := buildFigure3aDB()
	if err != nil {
		log.Fatal(err)
	}
	distinct, handles := db.RuleCount()
	fmt.Printf("database before checkpointing (Figure 3a): %d rules, %d trie references\n\n", distinct, handles)

	for _, mode := range []checkpoint.Mode{checkpoint.Naive, checkpoint.RcAware, checkpoint.VisitedSet} {
		snap, err := db.Checkpoint(checkpoint.NewEngine(mode))
		if err != nil {
			log.Fatal(err)
		}
		restored, err := firewall.RestoreDB(snap)
		if err != nil {
			log.Fatal(err)
		}
		rd, rh := restored.RuleCount()
		fmt.Printf("%-12s copied %d rule objects (probes: %d); restored DB has %d rules / %d references\n",
			mode.String()+":", snap.Stats().RcFirst, snap.Stats().SetProbes, rd, rh)

		// Semantic probe: flip rule 1 through the 10.0/16 leaf, then
		// classify a packet that matches through the 10.5.0/24 leaf.
		flipRuleOne(restored)
		act, _ := restored.Match(packet.FiveTuple{
			SrcIP: packet.Addr(1, 1, 1, 1), DstIP: packet.Addr(10, 5, 0, 9),
			SrcPort: 1234, DstPort: 80, Proto: packet.ProtoTCP,
		})
		if act == firewall.Deny {
			fmt.Println("             update through one alias visible through the other: sharing PRESERVED")
		} else {
			fmt.Println("             update through one alias NOT visible through the other: rule was DUPLICATED (Figure 3b)")
		}
		fmt.Println()
	}
}

// flipRuleOne sets rule 1 to Deny through the first leaf that holds it.
func flipRuleOne(db *firewall.DB) {
	done := false
	db.Rules.Walk(func(_ packet.IPv4, _ int, v *[]firewall.SharedRule) bool {
		for _, h := range *v {
			if h.Get().ID == 1 && !done {
				h.Set(firewall.Rule{ID: 1, Action: firewall.Deny, Comment: "flipped"})
				done = true
				return false
			}
		}
		return true
	})
}
