// Secure-store: the paper's §4 case study end to end. The multi-client
// secure data store is verified leak-free; then each variant with a
// seeded access-check bug is pushed through the same pipeline and the
// verifier discovers every one — the paper's SMACK sanity check. Finally
// the paper's own Buffer listing is verified, showing the direct leak
// caught by the IFC analysis and the aliasing exploit caught by the
// borrow checker.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/minirust"
	"repro/internal/securestore"
	"repro/internal/verifier"
)

func main() {
	log.SetFlags(0)

	fmt.Println("== the secure data store (correct implementation) ==")
	rep := securestore.VerifyVariant(securestore.Correct)
	rep.Render(os.Stdout)
	if !rep.OK() {
		log.Fatal("BUG: correct store rejected")
	}
	res, err := verifier.Execute(rep)
	if err != nil || res.Err != nil {
		log.Fatalf("store run failed: %v / %v", err, res.Err)
	}
	fmt.Printf("public read served: %s", res.Output)

	fmt.Println("\n== seeded-bug sanity check (paper §4) ==")
	for _, v := range securestore.Variants {
		if !v.Buggy() {
			continue
		}
		rep := securestore.VerifyVariant(v)
		if rep.OK() {
			log.Fatalf("BUG: seeded bug %s not discovered", v)
		}
		fmt.Printf("%-20s discovered: %d violation(s), e.g. %s\n",
			v, len(rep.Violations), rep.Violations[0])
	}

	fmt.Println("\n== the paper's Buffer listing ==")
	fmt.Println("line 16 (direct leak):")
	rep16 := verifier.Verify(minirust.PaperBufferProgram(true, false))
	rep16.Render(os.Stdout)
	fmt.Println("line 17 (aliasing exploit):")
	rep17 := verifier.Verify(minirust.PaperBufferProgram(false, true))
	rep17.Render(os.Stdout)
	if rep17.Stage != verifier.StageBorrowCheck {
		log.Fatal("BUG: exploit should die in the borrow checker")
	}
	fmt.Println("\nthe exploit never reaches the IFC analysis: single ownership")
	fmt.Println("rejects it at compile time, exactly as the paper argues.")
}
