// Isolated-maglev: the paper's §3 NetBricks experiment as a runnable
// scenario. A packet pipeline (parse → Maglev load balancer) runs with
// every stage in its own protection domain; batches cross the domain
// boundaries by ownership transfer (zero copies); a fault injected into
// the balancer stage is contained, the domain recovers from clean state,
// and the pipeline keeps forwarding — while the caller observes that the
// moved batch really is inaccessible after the send.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/dpdk"
	"repro/internal/linear"
	"repro/internal/maglev"
	"repro/internal/netbricks"
	"repro/internal/packet"
	"repro/internal/sfi"
)

func main() {
	log.SetFlags(0)

	// Substrate: a simulated port with a skewed flow mix and a Maglev
	// balancer over 4 backends.
	port := dpdk.NewPort(dpdk.Config{
		PoolSize: 256,
		Gen:      dpdk.NewZipfFlows(dpdk.DefaultSpec(), 512, 1.2, 7),
	})
	backends := []maglev.Backend{
		{Name: "be-0", IP: packet.Addr(10, 1, 0, 1)},
		{Name: "be-1", IP: packet.Addr(10, 1, 0, 2)},
		{Name: "be-2", IP: packet.Addr(10, 1, 0, 3)},
		{Name: "be-3", IP: packet.Addr(10, 1, 0, 4)},
	}
	lb, err := maglev.NewBalancer(backends, 65537)
	if err != nil {
		log.Fatal(err)
	}

	// A flaky stage between parse and maglev: panics on its 5th batch.
	flaky := &netbricks.FaultInjector{PanicOn: 5}
	stages := []netbricks.Operator{netbricks.Parse{}, flaky, maglev.Operator{LB: lb}}
	factories := []func() netbricks.Operator{
		nil,
		func() netbricks.Operator { return &netbricks.FaultInjector{} },
		nil,
	}
	mgr := sfi.NewManager()
	pipeline, err := netbricks.NewIsolatedPipeline(mgr, stages, factories)
	if err != nil {
		log.Fatal(err)
	}

	// Demonstrate the zero-copy move: after handing a batch to the
	// pipeline, the sender's handle is dead.
	pkts := make([]*packet.Packet, 8)
	n := port.RxBurst(pkts)
	batch := linear.New(&netbricks.Batch{Pkts: pkts[:n]})
	stale := batch // sender keeps a copy of the handle, as an attacker would
	ctx := sfi.NewContext()
	out, err := pipeline.Process(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := stale.Borrow(); errors.Is(err, linear.ErrMoved) {
		fmt.Println("zero-copy send: sender's handle is dead after the move (ErrMoved)")
	} else {
		log.Fatal("BUG: sender retained access to the batch")
	}
	final, err := out.Into()
	if err != nil {
		log.Fatal(err)
	}
	port.TxBurst(final.Pkts)

	// Now run batches through until the injected fault fires, with
	// automatic recovery.
	runner := netbricks.Runner{Port: port, BatchSize: 8, Isolated: pipeline, AutoRecover: true}
	stats, err := runner.Run(ctx, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %d batches (%d packets)\n", stats.Batches, stats.Packets)
	fmt.Printf("faults contained: %d, recoveries: %d — the pipeline survived its crashing stage\n",
		stats.Faults, stats.Recovered)

	for _, st := range pipeline.Stages() {
		calls, faults, recoveries, _, _ := st.Domain.Stats.Snapshot()
		fmt.Printf("  domain %-22s calls=%-3d faults=%d recoveries=%d\n",
			st.Domain.Name(), calls, faults, recoveries)
	}
	hits, misses := lb.Stats()
	fmt.Printf("maglev: %d flows tracked (%d hits, %d misses)\n", lb.ConnCount(), hits, misses)
}
